(* RMT dsim: the feed-forward tick engine (§3.3).

   At every tick one PHV enters stage 0 and the PHVs occupying later stages
   advance exactly one stage.  The paper models each PHV as a read half and
   a write half so a stage cannot read a PHV in the same tick it was
   written; we obtain the same semantics with a double-buffered register
   file: every stage reads its input row from the buffer as it stood at the
   beginning of the tick ([cur]) and writes its output row into the other
   buffer ([nxt]), which becomes [cur] when the tick commits.  No stage can
   therefore observe a value written during its own tick, regardless of the
   order stages execute in.

   The register file is allocation-free in steady state: both buffers are
   flat preallocated (depth+1) x width int arrays, row occupancy is a
   bitmask (bit s = a live PHV sits at the input of stage s; bit depth = a
   PHV exited on the last tick), and each stage owns a preallocated
   output-mux argument scratch buffer.  A tick allocates nothing. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp

type t = {
  desc : Ir.t;
  ctx : Interp.ctx;
  depth : int;
  width : int;
  (* Ping-pong register file: row s of [cur] = PHV waiting at the input of
     stage s as of the start of the tick (the "read half"); row depth = PHV
     that exited the pipeline on the last tick. *)
  mutable cur : int array;
  mutable nxt : int array;
  mutable occ : int; (* occupancy bitmask over the rows of [cur] *)
  (* Stage-input view handed to the ALUs: row s of [cur] blitted here so
     interpreters see a plain width-sized PHV. *)
  phv_scratch : int array;
  (* args.(s): per-stage output-mux argument scratch,
     [stateless outs; stateful outs; new state_0s; old container value]. *)
  args : int array array;
  (* state.(s).(j) = persistent state vector of stateful ALU j in stage s;
     snapshots.(s).(j) is its preallocated latched read-half scratch. *)
  state : int array array array;
  snapshots : int array array array;
  mutable tick : int;
  (* Lazily built structure-of-arrays register file for the batched path
     (one lane per (stage, container) slot), cached per batch capacity. *)
  mutable batch_rows : (int * Batch.rows) option;
}

let init_table init =
  let tbl = Hashtbl.create (max 16 (List.length init)) in
  (* first binding wins, like List.assoc on the original init list *)
  List.iter
    (fun (name, values) -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name values)
    init;
  tbl

let load_init state (desc : Ir.t) init =
  match init with
  | [] -> ()
  | _ ->
    let tbl = init_table init in
    Array.iteri
      (fun s (st : Ir.stage) ->
        Array.iteri
          (fun j (a : Ir.alu) ->
            match Hashtbl.find_opt tbl a.Ir.a_name with
            | Some values ->
              let vec = state.(s).(j) in
              Array.blit values 0 vec 0 (min (Array.length values) (Array.length vec))
            | None -> ())
          st.Ir.s_stateful)
      desc.Ir.d_stages

(* [init] optionally preloads stateful-ALU state vectors (keyed by ALU
   name), modelling control-plane register initialization. *)
let create ?(init = []) (desc : Ir.t) ~mc =
  let depth = desc.Ir.d_depth in
  let width = desc.Ir.d_width in
  if depth + 1 >= Sys.int_size then
    invalid_arg "Engine.create: pipeline depth exceeds the occupancy bitmask";
  let state =
    Array.map
      (fun (st : Ir.stage) ->
        Array.map (fun (a : Ir.alu) -> Array.make (max 1 a.Ir.a_state_size) 0) st.Ir.s_stateful)
      desc.Ir.d_stages
  in
  load_init state desc init;
  let snapshots = Array.map (Array.map (fun v -> Array.make (Array.length v) 0)) state in
  let args =
    Array.map
      (fun (st : Ir.stage) ->
        Array.make
          (Array.length st.Ir.s_stateless + (2 * Array.length st.Ir.s_stateful) + 1)
          0)
      desc.Ir.d_stages
  in
  {
    desc;
    ctx = Interp.ctx_of desc ~mc;
    depth;
    width;
    cur = Array.make ((depth + 1) * width) 0;
    nxt = Array.make ((depth + 1) * width) 0;
    occ = 0;
    phv_scratch = Array.make width 0;
    args;
    state;
    snapshots;
    tick = 0;
    batch_rows = None;
  }

(* Installs (or clears) a structural-coverage probe on the engine's
   interpreter context.  The campaign's coverage replay creates a fresh
   engine on the unoptimized description, instruments it, and runs the
   trial's inputs once more — the differential hot path never sees a
   probe. *)
let instrument t probe = Interp.set_probe t.ctx probe

(* Re-arms an engine for an independent simulation: zeroes all persistent
   ALU state (then reapplies [init]), empties the register file and resets
   the tick counter.  Lets benchmark harnesses reuse one engine across
   iterations without reallocating. *)
let reset ?(init = []) t =
  Array.iter (Array.iter (fun vec -> Array.fill vec 0 (Array.length vec) 0)) t.state;
  load_init t.state t.desc init;
  t.occ <- 0;
  t.tick <- 0

let no_state : int array = [||]

(* Executes stage [s] on the PHV in row s of [cur], writing the outgoing PHV
   into row s+1 of [nxt]: run all stateless and stateful ALUs on the read
   half, then let each output mux pick the value written to its container.
   Fills the stage's scratch [args] buffer by index — no lists, no
   intermediate arrays. *)
let exec_stage t (st : Ir.stage) s =
  let ctx = t.ctx in
  let width = t.width in
  Array.blit t.cur (s * width) t.phv_scratch 0 width;
  let phv = t.phv_scratch in
  let args = t.args.(s) in
  let stateless = st.Ir.s_stateless and stateful = st.Ir.s_stateful in
  let nsl = Array.length stateless and nsf = Array.length stateful in
  let state = t.state.(st.Ir.s_index) and snapshots = t.snapshots.(st.Ir.s_index) in
  for i = 0 to nsl - 1 do
    args.(i) <- Interp.run_alu_into ctx stateless.(i) ~phv ~state:no_state ~snapshot:no_state
  done;
  for j = 0 to nsf - 1 do
    args.(nsl + j) <- Interp.run_alu_into ctx stateful.(j) ~phv ~state:state.(j) ~snapshot:snapshots.(j)
  done;
  (* Post-execution state_0 of each stateful ALU ("write half" of the state
     datapath), also selectable by the output muxes. *)
  for j = 0 to nsf - 1 do
    args.(nsl + nsf + j) <- state.(j).(0)
  done;
  let n = nsl + (2 * nsf) + 1 in
  let dst = (s + 1) * width in
  for c = 0 to width - 1 do
    args.(n - 1) <- phv.(c);
    t.nxt.(dst + c) <- Interp.apply_output_mux ctx st.Ir.s_output_muxes.(c) ~args ~n_args:n
  done

(* Advances the pipeline by one tick.  The caller has already placed the
   incoming PHV (if any) in row 0 of [cur] and set/cleared occupancy bit 0.
   Returns [true] when a PHV exits this tick (readable in row [depth] of the
   post-swap [cur]). *)
let tick_once t =
  let depth = t.depth and width = t.width in
  let occ = t.occ in
  let new_occ = ref 0 in
  for s = 0 to depth - 1 do
    if occ land (1 lsl s) <> 0 then begin
      exec_stage t t.desc.Ir.d_stages.(s) s;
      new_occ := !new_occ lor (1 lsl (s + 1))
    end
  done;
  (* Carry this tick's stage-0 input across the swap so inspection (the
     debugger's register view) still sees it; the next injection point
     overwrites or clears bit 0 before any stage runs, so it is never
     executed twice. *)
  if occ land 1 <> 0 then begin
    Array.blit t.cur 0 t.nxt 0 width;
    new_occ := !new_occ lor 1
  end;
  let swapped = t.cur in
  t.cur <- t.nxt;
  t.nxt <- swapped;
  t.occ <- !new_occ;
  t.tick <- t.tick + 1;
  !new_occ land (1 lsl depth) <> 0

let inject t (phv : Phv.t) =
  Array.blit phv 0 t.cur 0 t.width;
  t.occ <- t.occ lor 1

let no_inject t = t.occ <- t.occ land lnot 1

(* Advances the pipeline by one tick.  [input] (if any) enters stage 0 and
   is executed by it this very tick (§3.3); every in-flight PHV advances
   exactly one stage.  The result is a fresh copy of the PHV exiting the
   last stage on this tick. *)
let step t ~input =
  (match input with Some phv -> inject t phv | None -> no_inject t);
  if tick_once t then Some (Array.sub t.cur (t.depth * t.width) t.width) else None

(* The PHV at each stage boundary (fresh copies): index s = input of stage
   s, index depth = the PHV that exited on the last tick.  This is the
   register-file view the time-travel debugger snapshots. *)
let boundaries t : Phv.t option array =
  Array.init (t.depth + 1) (fun s ->
      if t.occ land (1 lsl s) <> 0 then Some (Array.sub t.cur (s * t.width) t.width) else None)

let current_state t =
  let acc = ref [] in
  Array.iteri
    (fun s per_stage ->
      Array.iteri
        (fun j st ->
          let name = t.desc.Ir.d_stages.(s).Ir.s_stateful.(j).Ir.a_name in
          acc := (name, Array.copy st) :: !acc)
        per_stage)
    t.state;
  List.rev !acc

(* Feeds [inputs] one per tick, then drains the pipeline, blitting each
   exiting PHV into [buf] (cleared first).  This is the steady-state hot
   path: with a presized buffer no per-PHV allocation happens (the
   interpreter's expression-level environments aside — see {!Compiled} for
   the fully allocation-free substrate).  The engine must be fresh or
   [reset].  Final state is read separately via {!current_state}.

   [budget] (if any) is spent one unit per tick; {!Budget.Exhausted}
   escapes to the caller mid-run — the per-trial watchdog of the campaign
   runner.  The option is resolved to a closure once, outside the tick
   loop, so the unbudgeted hot path pays nothing. *)
let run_into ?budget t ~inputs (buf : Trace.Buffer.t) =
  Trace.Buffer.clear buf;
  let spend =
    match budget with None -> ignore | Some b -> fun () -> Budget.spend b
  in
  let out_off = t.depth * t.width in
  List.iter
    (fun phv ->
      spend ();
      inject t phv;
      if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off)
    inputs;
  for _ = 1 to t.depth do
    spend ();
    no_inject t;
    if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off
  done

(* Executes stage [s] over the first [k] lanes of the batched register
   file, one lane (= injection slot) at a time in slot order: gather the
   lane's PHV into the stage scratch, run the stage exactly as
   {!exec_stage} does, and scatter the mux outputs into row s+1.  [stuck]
   lists (stateful-ALU index, slot, value) overlays asserted before every
   lane's execution — the batched image of the sequential overlay's
   assert-after-every-tick (state is private per ALU, so only the order of
   one ALU's own executions matters, and that order is slot order in both
   paths). *)
let exec_stage_lanes t (rows : Batch.rows) s ~k ~(stuck : (int * int * int) list) =
  let st = t.desc.Ir.d_stages.(s) in
  let ctx = t.ctx in
  let width = t.width in
  let row = rows.(s) and nrow = rows.(s + 1) in
  let phv = t.phv_scratch in
  let args = t.args.(s) in
  let stateless = st.Ir.s_stateless and stateful = st.Ir.s_stateful in
  let nsl = Array.length stateless and nsf = Array.length stateful in
  let state = t.state.(st.Ir.s_index) and snapshots = t.snapshots.(st.Ir.s_index) in
  let n = nsl + (2 * nsf) + 1 in
  for b = 0 to k - 1 do
    (match stuck with
    | [] -> ()
    | l -> List.iter (fun (j, slot, v) -> state.(j).(slot) <- v) l);
    for c = 0 to width - 1 do
      phv.(c) <- Batch.lane_get row.(c) b
    done;
    for i = 0 to nsl - 1 do
      args.(i) <- Interp.run_alu_into ctx stateless.(i) ~phv ~state:no_state ~snapshot:no_state
    done;
    for j = 0 to nsf - 1 do
      args.(nsl + j) <-
        Interp.run_alu_into ctx stateful.(j) ~phv ~state:state.(j) ~snapshot:snapshots.(j)
    done;
    for j = 0 to nsf - 1 do
      args.(nsl + nsf + j) <- state.(j).(0)
    done;
    for c = 0 to width - 1 do
      args.(n - 1) <- phv.(c);
      Batch.lane_set nrow.(c) b (Interp.apply_output_mux ctx st.Ir.s_output_muxes.(c) ~args ~n_args:n)
    done
  done

(* Batched mirror of {!run_into}: same contract (engine must be fresh or
   {!reset}; final state via {!current_state}), same trace and final state
   bit-for-bit, but driven stage-major over lane chunks of [batch] PHVs by
   {!Batch.run}.  [overlays] carries decomposed fault primitives — see
   {!Faults.run_engine_batched} for the faulted entry point. *)
let run_batch_into ?budget ?overlays ~batch t ~inputs (buf : Trace.Buffer.t) =
  let rows =
    match t.batch_rows with
    | Some (cap, rows) when cap = batch -> rows
    | _ ->
      let rows = Batch.create_rows ~depth:t.depth ~width:t.width ~cap:batch in
      t.batch_rows <- Some (batch, rows);
      rows
  in
  let ops =
    {
      Batch.bo_cap = batch;
      bo_depth = t.depth;
      bo_width = t.width;
      bo_rows = rows;
      bo_exec = (fun ~s ~k ~stuck -> exec_stage_lanes t rows s ~k ~stuck);
    }
  in
  Batch.run ?budget ?overlays ops ~inputs buf

(* Runs a complete simulation: feeds [inputs] one per tick, then drains the
   pipeline, returning the output trace.

   @raise Machine_code.Missing if the machine code lacks a required pair
   (only possible on the unoptimized description; optimized descriptions
   have the machine code compiled in). *)
let run ?init (desc : Ir.t) ~mc ~inputs : Trace.t =
  let t = create ?init desc ~mc in
  let buf = Trace.Buffer.create ~width:t.width ~capacity:(List.length inputs) in
  run_into t ~inputs buf;
  { Trace.inputs; outputs = Trace.Buffer.contents buf; final_state = current_state t }
