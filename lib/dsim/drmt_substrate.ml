(* dRMT execution substrates (paper §4).

   Adapts the event-driven dRMT model ({!Druzhba_drmt.Sim.run_packets}) and
   its sequential P4 reference semantics ({!Sim.run_sequential_packets}) to
   the {!Substrate} trace contract, so the differential machinery built for
   the RMT engines — oracle, campaigns, fault injection, budgets, golden
   traces — drives the match-action side of the paper too.

   The trace mapping: a PHV container per packet field, laid out as

     [header fields (declaration order) ; meta fields (sorted) ; drop flag]

   An input PHV initializes one packet's fields (values masked to each
   field's declared width); the output row is the packet's final fields
   plus its drop flag.  Registers — dRMT's global stateful tables — surface
   through [current_state]/[load_state] as single-slot vectors, keyed by
   register name.

   Determinism: [traffic] derives a per-packet PRNG stream from
   (seed, packet id) via {!Prng.derive}, exactly like {!Sim.random_packet},
   so one campaign seed replays any single packet of a dRMT trial.

   Faults: this substrate has no per-stage stateful-ALU geometry, so the
   stuck-at class does not apply; fault plans act on the input path only
   ({!Faults.overlay_inputs}: bit flips at injection, dropped slots).

   Budget: one unit of fuel per scheduled (packet, node) event in event
   mode, one per (packet, table) step in sequential mode. *)

module P4 = Druzhba_drmt.P4
module Dag = Druzhba_drmt.Dag
module Scheduler = Druzhba_drmt.Scheduler
module Entries = Druzhba_drmt.Entries
module Sim = Druzhba_drmt.Sim
module Prng = Druzhba_util.Prng
module Value = Druzhba_util.Value

type mode = Event | Sequential

type t = {
  label : string;
  p4 : P4.t;
  entries : Entries.entry list;
  cfg : Scheduler.config;
  mode : mode;
  layout : P4.field_ref array; (* container c < n_fields -> field; container n_fields = drop flag *)
  widths : int array; (* declared bit width per layout slot *)
  mutable init : (string * int) list; (* register preload installed by load_state *)
  mutable regs : (string * int) list; (* register file after the last run/step *)
  mutable last_in : Phv.t option; (* debugger boundaries *)
  mutable last_out : Phv.t option;
  mutable on_result : (Sim.result -> unit) option;
      (* coverage observer: sees the raw simulator result (per-table hit
         stats included) of every [run_into] before it is folded to a trace *)
}

let field_refs (p : P4.t) =
  let acc = ref [] in
  let note r = acc := r :: !acc in
  List.iter
    (fun (a : P4.action) ->
      List.iter note (P4.action_reads a);
      List.iter note (P4.action_writes a))
    p.P4.actions;
  List.iter (fun (tbl : P4.table) -> note tbl.P4.t_key) p.P4.tables;
  !acc

let meta_fields p =
  field_refs p
  |> List.filter_map (function P4.Meta m -> Some m | _ -> None)
  |> List.sort_uniq String.compare
  |> List.map (fun m -> P4.Meta m)

let register_names p =
  field_refs p
  |> List.filter_map (function P4.Reg r -> Some r | _ -> None)
  |> List.sort_uniq String.compare

let mode_name = function Event -> "event" | Sequential -> "sequential"

let create ?label ?(cfg = Scheduler.config ()) ~mode ~entries (p : P4.t) : t =
  (* surface an unschedulable program at construction time, not first run *)
  (match mode with
  | Event -> ignore (Scheduler.schedule cfg (Dag.build p))
  | Sequential -> ());
  let layout =
    Array.of_list (List.map fst (P4.packet_fields p.P4.headers) @ meta_fields p)
  in
  let widths =
    Array.map (fun r -> match P4.field_width p r with Some w -> min w 62 | None -> 32) layout
  in
  let label = match label with Some l -> l | None -> "drmt@" ^ mode_name mode in
  {
    label;
    p4 = p;
    entries;
    cfg;
    mode;
    layout;
    widths;
    init = [];
    regs = [];
    last_in = None;
    last_out = None;
    on_result = None;
  }

(* Installs (or clears) a result observer; the campaign's coverage replay
   uses it to read table-hit statistics off the sequential reference run. *)
let observe t on_result = t.on_result <- on_result

let width t = Array.length t.layout + 1

(* Container names of the trace row, for rendering golden fixtures and
   divergence reports: ["ethernet.dst"; ...; "meta.out_port"; "dropped"]. *)
let container_names t =
  Array.append
    (Array.map
       (function
         | P4.Header (h, f) -> h ^ "." ^ f
         | P4.Meta m -> "meta." ^ m
         | P4.Reg r -> "reg." ^ r)
       t.layout)
    [| "dropped" |]

let regs_of_state init =
  List.map (fun (n, vec) -> (n, if Array.length vec > 0 then vec.(0) else 0)) init

(* --- Packet <-> PHV mapping -------------------------------------------------- *)

let packet_of_phv t ~id ~arrival ~processor (phv : Phv.t) =
  let n = Array.length t.layout in
  let assignments = ref [] in
  for c = n - 1 downto 0 do
    let v = if c < Array.length phv then phv.(c) else 0 in
    assignments := (t.layout.(c), Value.mask t.widths.(c) v) :: !assignments
  done;
  Sim.packet_of_fields ~id ~arrival ~processor !assignments

let row_of_packet t (row : int array) (pk : Sim.packet) =
  Array.iteri
    (fun c r -> row.(c) <- (match Hashtbl.find_opt pk.Sim.fields r with Some v -> v | None -> 0))
    t.layout;
  row.(Array.length t.layout) <- (if pk.Sim.dropped then 1 else 0)

let run_result ?spend t (inputs : Phv.t list) : Sim.result =
  let processors = match t.mode with Event -> t.cfg.Scheduler.processors | Sequential -> 1 in
  let pks =
    List.mapi
      (fun i phv -> packet_of_phv t ~id:i ~arrival:i ~processor:(i mod processors) phv)
      inputs
  in
  match t.mode with
  | Event -> Sim.run_packets ?spend ~registers:t.init ~cfg:t.cfg ~entries:t.entries pks t.p4
  | Sequential -> Sim.run_sequential_packets ?spend ~registers:t.init ~entries:t.entries pks t.p4

(* --- Substrate implementation ------------------------------------------------ *)

module M = struct
  type nonrec t = t

  let name t = t.label
  let width = width

  let load_state t init =
    t.init <- regs_of_state init;
    t.regs <- t.init

  let run_into ?budget ?faults t ~inputs (buf : Trace.Buffer.t) =
    let inputs =
      match faults with None -> inputs | Some plan -> Faults.overlay_inputs plan inputs
    in
    let spend = match budget with None -> None | Some b -> Some (fun () -> Budget.spend b) in
    let result = run_result ?spend t inputs in
    (match t.on_result with Some f -> f result | None -> ());
    t.regs <- result.Sim.r_registers;
    Trace.Buffer.clear buf;
    let row = Array.make (width t) 0 in
    List.iter
      (fun pk ->
        row_of_packet t row pk;
        Trace.Buffer.push buf row ~off:0)
      result.Sim.r_packets

  (* dRMT has no per-stage register file to vectorize; the batched contract
     is satisfied by the sequential path (same trace, state and budget). *)
  let run_batch_into ?budget ?faults ~batch:_ t ~inputs buf =
    run_into ?budget ?faults t ~inputs buf

  let current_state t =
    List.map
      (fun name ->
        let v = match List.assoc_opt name t.regs with Some v -> v | None -> 0 in
        (name, [| v |]))
      (register_names t.p4)

  (* Debugger-grade stepping: one packet per tick, run to completion under
     the sequential reference semantics, registers persisting across steps.
     (Event-mode interleaving has no per-tick PHV boundary to expose — a
     packet's nodes spread over many cycles — so stepping is defined on the
     reference semantics for both modes.) *)
  let step t ~input =
    match input with
    | None ->
      t.last_in <- None;
      t.last_out <- None;
      None
    | Some phv ->
      let pk = packet_of_phv t ~id:0 ~arrival:0 ~processor:0 phv in
      let result =
        Sim.run_sequential_packets ~registers:t.regs ~entries:t.entries [ pk ] t.p4
      in
      t.regs <- result.Sim.r_registers;
      let row = Array.make (width t) 0 in
      row_of_packet t row pk;
      t.last_in <- Some (Array.copy phv);
      t.last_out <- Some row;
      Some (Array.copy row)

  (* Two boundaries: the last injected PHV and the last completed packet. *)
  let boundaries t = [| t.last_in; t.last_out |]
end

let pack (t : t) : Substrate.packed = Substrate.Packed ((module M), t)

(* [of_p4 ?label ?cfg ~mode ~entries p] builds and packs a dRMT substrate.
   @raise Scheduler.Infeasible in event mode when no valid schedule exists
   for [cfg]. *)
let of_p4 ?label ?cfg ~mode ~entries p : Substrate.packed =
  pack (create ?label ?cfg ~mode ~entries p)

(* --- Traffic ------------------------------------------------------------------ *)

(* [traffic ~seed t n] draws [n] input PHVs, packet [k] from the derived
   stream (seed, k) — byte-for-byte the field values {!Sim.random_packet}
   would draw, so substrate-fed runs replay [Sim.run ~seed] exactly.  Meta
   fields and the drop flag start at 0. *)
let traffic ~seed t n : Phv.t list =
  let n_headers = List.length (P4.packet_fields t.p4.P4.headers) in
  List.init n (fun k ->
      let prng = Prng.create (Prng.derive seed k) in
      Array.init (width t) (fun c ->
          if c < n_headers then Prng.bits prng t.widths.(c) else 0))
