(* Deterministic tick budgets (the per-trial watchdog's fuel).

   A wall-clock watchdog would make campaign reports depend on machine
   speed and scheduling, breaking the byte-identical-across-[--jobs]
   contract; instead the engines spend one unit of fuel per simulation tick
   and raise {!Exhausted} when the budget runs dry.  The campaign layer
   converts a human-facing [--trial-timeout] into ticks at a fixed nominal
   rate, so two runs of the same campaign always time the same trials out
   at the same tick. *)

exception Exhausted

type t = { mutable remaining : int; limit : int }

(* [ticks n] is a budget of [n] simulation ticks; [n <= 0] is rejected
   (an unlimited run simply passes no budget). *)
let ticks n =
  if n <= 0 then invalid_arg "Budget.ticks: budget must be positive";
  { remaining = n; limit = n }

let limit b = b.limit
let remaining b = b.remaining

(* Spends one tick.  @raise Exhausted when no fuel is left. *)
let spend b =
  if b.remaining <= 0 then raise Exhausted;
  b.remaining <- b.remaining - 1

(* Spends [ticks] units at once — the batched engines' equivalent of [ticks]
   sequential {!spend}s: if fewer units remain, the budget is drained to
   exactly 0 (like a sequential run whose last successful spend left 0)
   before {!Exhausted} is raised.  @raise Exhausted as above. *)
let spend_bulk b ~ticks =
  if b.remaining >= ticks then b.remaining <- b.remaining - ticks
  else begin
    b.remaining <- 0;
    raise Exhausted
  end

(* Re-arms the budget to its full limit (one fresh sub-budget per shrink
   probe, without reallocating). *)
let refill b = b.remaining <- b.limit

(* Nominal simulated ticks per second used to convert [--trial-timeout]
   seconds into fuel.  Deliberately a constant, not a measurement: the
   conversion must be identical on every machine or reports would not be
   reproducible.  2e6 ticks/s is the right order of magnitude for the
   interpreter on small fuzzing pipelines (see docs/performance.md). *)
let nominal_ticks_per_second = 2_000_000

let of_seconds s =
  if s <= 0 then invalid_arg "Budget.of_seconds: timeout must be positive";
  ticks (s * nominal_ticks_per_second)
