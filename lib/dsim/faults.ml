(* Hardware fault injection (deterministic seeded overlay).

   The paper's pitch is that a software model of the switch can explore "as
   many scenarios as you can imagine"; this module adds the scenarios real
   hardware adds on its own: single-event upsets and stuck-at defects.  A
   fault *plan* is a pure function of its seed and the pipeline geometry —
   the same plan replays identically on both execution substrates, so fault
   runs are themselves differential-testable (Engine-under-faults must equal
   Compiled-under-faults), and a campaign report stays byte-deterministic.

   Three fault classes are modelled:

   - {b bit flips}: one bit of one container of one incoming PHV is inverted
     at injection time (an SEU in the parser/deparser path);
   - {b stuck-at state slots}: a stateful ALU's register slot is forced to a
     fixed value between ticks (a stuck memory cell) — ALU writes during a
     tick proceed normally and are overwritten when the tick commits;
   - {b dropped PHVs}: an injection slot is skipped entirely (an input-queue
     drop), shortening the output trace.

   The overlay never touches the engines' code paths: fault-free simulation
   runs the exact same instructions with or without this module loaded,
   which is what lets the campaign oracle assert that a fault-free replay
   after a fault run is still byte-identical to the pristine reference. *)

module Prng = Druzhba_util.Prng
module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile

type flip = { bf_phv : int; bf_container : int; bf_bit : int }
type stuck = { sk_stage : int; sk_alu : int; sk_slot : int; sk_value : int }

type t = {
  fp_seed : int;
  fp_flips : flip list;
  fp_stuck : stuck list;
  fp_dropped : bool array; (* index = injection slot *)
}

let seed t = t.fp_seed
let n_flips t = List.length t.fp_flips
let n_stuck t = List.length t.fp_stuck
let n_dropped t = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.fp_dropped

let is_empty t = t.fp_flips = [] && t.fp_stuck = [] && n_dropped t = 0

let pp ppf t =
  Fmt.pf ppf "faults(seed %d): %d bit flip(s), %d stuck slot(s), %d drop(s)" t.fp_seed
    (n_flips t) (n_stuck t) (n_dropped t)

(* [generate ~seed ~desc ~n_inputs ~count ()] draws [count] faults for a
   simulation of [n_inputs] PHVs on [desc].  Pure in its arguments. *)
let generate ~seed ~(desc : Ir.t) ~n_inputs ~count () : t =
  let prng = Prng.create seed in
  let width = desc.Ir.d_width and bits = desc.Ir.d_bits in
  let flips = ref [] and stuck = ref [] in
  let dropped = Array.make (max 1 n_inputs) false in
  let stuck_sites =
    Array.to_list desc.Ir.d_stages
    |> List.concat_map (fun (st : Ir.stage) ->
           Array.to_list st.Ir.s_stateful
           |> List.mapi (fun j (a : Ir.alu) -> (st.Ir.s_index, j, max 1 a.Ir.a_state_size)))
    |> Array.of_list
  in
  for _ = 1 to count do
    match Prng.int prng 3 with
    | 0 when n_inputs > 0 ->
      flips :=
        {
          bf_phv = Prng.int prng n_inputs;
          bf_container = Prng.int prng width;
          bf_bit = Prng.int prng bits;
        }
        :: !flips
    | 1 when Array.length stuck_sites > 0 ->
      let sk_stage, sk_alu, slots = stuck_sites.(Prng.int prng (Array.length stuck_sites)) in
      stuck :=
        { sk_stage; sk_alu; sk_slot = Prng.int prng slots; sk_value = Prng.bits prng bits }
        :: !stuck
    | 2 when n_inputs > 0 -> dropped.(Prng.int prng n_inputs) <- true
    | _ -> () (* fault class infeasible on this geometry; draw is consumed *)
  done;
  { fp_seed = seed; fp_flips = List.rev !flips; fp_stuck = List.rev !stuck; fp_dropped = dropped }

(* [generate_io] draws an input-path-only plan (bit flips + drops, no
   stuck-at sites) for substrates without a stateful-ALU geometry — the dRMT
   adapter, whose registers live behind the match-action tables rather than
   in per-stage ALUs.  Pure in (seed, width, bits, n_inputs, count). *)
let generate_io ~seed ~width ~bits ~n_inputs ~count () : t =
  let prng = Prng.create seed in
  let flips = ref [] in
  let dropped = Array.make (max 1 n_inputs) false in
  for _ = 1 to count do
    match Prng.int prng 2 with
    | 0 when n_inputs > 0 ->
      flips :=
        {
          bf_phv = Prng.int prng n_inputs;
          bf_container = Prng.int prng width;
          bf_bit = Prng.int prng bits;
        }
        :: !flips
    | 1 when n_inputs > 0 -> dropped.(Prng.int prng n_inputs) <- true
    | _ -> ()
  done;
  { fp_seed = seed; fp_flips = List.rev !flips; fp_stuck = []; fp_dropped = dropped }

(* Applies the input-path faults of [plan] to an input list without touching
   any engine: flipped PHVs are replaced by fresh copies with the planned
   bits inverted, dropped injection slots are removed.  Substrates that run
   whole input batches at once (the dRMT adapter) inject faults by
   transforming their inputs through this and running normally — the
   stuck-at overlay does not apply to them. *)
let overlay_inputs plan (inputs : Phv.t list) : Phv.t list =
  List.filteri
    (fun i _ -> not (i < Array.length plan.fp_dropped && plan.fp_dropped.(i)))
    (List.mapi
       (fun i phv ->
         let flips = List.filter (fun f -> f.bf_phv = i) plan.fp_flips in
         if flips = [] then phv
         else begin
           let phv = Array.copy phv in
           List.iter
             (fun f ->
               if f.bf_container < Array.length phv then
                 phv.(f.bf_container) <- phv.(f.bf_container) lxor (1 lsl f.bf_bit))
             flips;
           phv
         end)
       inputs)

(* --- Overlay application --------------------------------------------------- *)

(* Flips the planned bits of injection slot [i] directly in row 0 of the
   register file (the PHV was just blitted there); the caller's input array
   is never mutated. *)
let apply_flips t (cur : int array) i =
  List.iter
    (fun f -> if f.bf_phv = i then cur.(f.bf_container) <- cur.(f.bf_container) lxor (1 lsl f.bf_bit))
    t.fp_flips

let apply_stuck_engine t (e : Engine.t) =
  List.iter (fun s -> e.Engine.state.(s.sk_stage).(s.sk_alu).(s.sk_slot) <- s.sk_value) t.fp_stuck

let apply_stuck_compiled t (c : Compiled.t) =
  List.iter
    (fun s ->
      let stage = c.Compiled.compiled.Compile.c_stages.(s.sk_stage) in
      stage.Compile.cs_stateful.(s.sk_alu).Compile.ca_env.Compile.state.(s.sk_slot) <- s.sk_value)
    t.fp_stuck

(* --- Fault-injected simulation --------------------------------------------

   Step-based mirrors of the engines' [run_into]: the stuck overlay is
   asserted before the first tick and re-asserted after every commit, bit
   flips land at injection, and dropped slots skip injection entirely.  The
   engine is reset first, so the same engine alternates freely between
   faulted and fault-free runs — the campaign oracle relies on this to
   check that faults never leak into the no-fault path. *)

let run_engine ?init ?budget plan (e : Engine.t) ~inputs (buf : Trace.Buffer.t) =
  Engine.reset ?init e;
  Trace.Buffer.clear buf;
  let spend = match budget with None -> ignore | Some b -> fun () -> Budget.spend b in
  apply_stuck_engine plan e;
  let out_off = e.Engine.depth * e.Engine.width in
  List.iteri
    (fun i phv ->
      spend ();
      if i < Array.length plan.fp_dropped && plan.fp_dropped.(i) then Engine.no_inject e
      else begin
        Engine.inject e phv;
        apply_flips plan e.Engine.cur i
      end;
      if Engine.tick_once e then Trace.Buffer.push buf e.Engine.cur ~off:out_off;
      apply_stuck_engine plan e)
    inputs;
  for _ = 1 to e.Engine.depth do
    spend ();
    Engine.no_inject e;
    if Engine.tick_once e then Trace.Buffer.push buf e.Engine.cur ~off:out_off;
    apply_stuck_engine plan e
  done

(* --- Batched fault runs -----------------------------------------------------

   The batched engines take the plan decomposed into {!Batch.primitives}
   (the [Batch] driver cannot depend on this module).  Drops and flips are
   applied by the driver at gather time against original injection-slot
   indices; stuck-at slots are asserted by the stage executors before every
   lane's execution, which together with the final assertion below is
   equivalent to the sequential assert-after-every-tick overlay (per-ALU
   state is private, so only each stuck ALU's own read-points matter).  The
   final assertion also lands on the {!Budget.Exhausted} path, where the
   sequential loop's last act was an [apply_stuck] after its final
   committed tick. *)

let primitives plan ~depth : Batch.primitives =
  let stuck = Array.make (max 1 depth) [] in
  List.iter
    (fun s ->
      if s.sk_stage < depth then
        stuck.(s.sk_stage) <- stuck.(s.sk_stage) @ [ (s.sk_alu, s.sk_slot, s.sk_value) ])
    plan.fp_stuck;
  {
    Batch.pv_dropped = plan.fp_dropped;
    pv_flips = List.map (fun f -> (f.bf_phv, f.bf_container, f.bf_bit)) plan.fp_flips;
    pv_stuck = stuck;
  }

let run_engine_batched ?init ?budget ~batch plan (e : Engine.t) ~inputs buf =
  Engine.reset ?init e;
  let overlays = primitives plan ~depth:e.Engine.depth in
  (try Engine.run_batch_into ?budget ~overlays ~batch e ~inputs buf
   with Budget.Exhausted as ex ->
     apply_stuck_engine plan e;
     raise ex);
  apply_stuck_engine plan e

let run_compiled_batched ?(init = []) ?budget ~batch plan (c : Compiled.t) ~inputs buf =
  let overlays = primitives plan ~depth:c.Compiled.depth in
  (try Compiled.run_batch_into ~init ?budget ~overlays ~batch c ~inputs buf
   with Budget.Exhausted as ex ->
     apply_stuck_compiled plan c;
     raise ex);
  apply_stuck_compiled plan c

let run_compiled ?(init = []) ?budget plan (c : Compiled.t) ~inputs (buf : Trace.Buffer.t) =
  Compiled.reset c.Compiled.compiled;
  Compiled.load_state c.Compiled.compiled init;
  c.Compiled.occ <- 0;
  c.Compiled.tick <- 0;
  Trace.Buffer.clear buf;
  let spend = match budget with None -> ignore | Some b -> fun () -> Budget.spend b in
  apply_stuck_compiled plan c;
  let out_off = c.Compiled.depth * c.Compiled.width in
  List.iteri
    (fun i phv ->
      spend ();
      if i < Array.length plan.fp_dropped && plan.fp_dropped.(i) then Compiled.no_inject c
      else begin
        Compiled.inject c phv;
        apply_flips plan c.Compiled.cur i
      end;
      if Compiled.tick_once c then Trace.Buffer.push buf c.Compiled.cur ~off:out_off;
      apply_stuck_compiled plan c)
    inputs;
  for _ = 1 to c.Compiled.depth do
    spend ();
    Compiled.no_inject c;
    if Compiled.tick_once c then Trace.Buffer.push buf c.Compiled.cur ~off:out_off;
    apply_stuck_compiled plan c
  done
