(* dsim over closure-compiled pipeline descriptions (see
   {!Druzhba_pipeline.Compile}).  Semantics are identical to {!Engine}; only
   the execution substrate differs — this is the configuration the
   benchmarks use, mirroring the paper's rustc-compiled pipeline
   descriptions.

   Like {!Engine}, the register file is a double-buffered flat
   (depth+1) x width int array with an occupancy bitmask, and every stage
   owns a preallocated output-mux argument scratch buffer.  Because the ALU
   bodies and muxes are compiled closures over int arrays, the steady-state
   tick path allocates nothing at all: Table 1 throughput is bounded by the
   ALU arithmetic, not the GC. *)

module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Vcompile = Druzhba_pipeline.Vcompile
module Machine_code = Druzhba_machine_code.Machine_code

type t = {
  compiled : Compile.t;
  depth : int;
  width : int;
  (* Ping-pong register file: row s of [cur] = PHV at the input of stage s
     as of the start of the tick; row depth = PHV that exited last tick. *)
  mutable cur : int array;
  mutable nxt : int array;
  mutable occ : int; (* occupancy bitmask over the rows of [cur] *)
  phv_scratch : int array; (* stage-input view handed to the compiled ALUs *)
  (* args.(s): per-stage output-mux argument scratch,
     [stateless outs; stateful outs; new state_0s; old container value]. *)
  args : int array array;
  mutable tick : int;
  (* Lazily built vectorized (structure-of-arrays) pipeline for the batched
     path, cached per batch capacity.  It shares the scalar closures' state
     vectors, so reset/load_state/current_state and the sequential path all
     see one state. *)
  mutable vec : Vcompile.t option;
}

let create (compiled : Compile.t) =
  let depth = compiled.Compile.c_depth and width = compiled.Compile.c_width in
  if depth + 1 >= Sys.int_size then
    invalid_arg "Compiled.create: pipeline depth exceeds the occupancy bitmask";
  let args =
    Array.map
      (fun (cs : Compile.compiled_stage) ->
        Array.make
          (Array.length cs.Compile.cs_stateless + (2 * Array.length cs.Compile.cs_stateful) + 1)
          0)
      compiled.Compile.c_stages
  in
  {
    compiled;
    depth;
    width;
    cur = Array.make ((depth + 1) * width) 0;
    nxt = Array.make ((depth + 1) * width) 0;
    occ = 0;
    phv_scratch = Array.make width 0;
    args;
    tick = 0;
    vec = None;
  }

(* Executes stage [s] on the PHV in row s of [cur], writing the outgoing PHV
   into row s+1 of [nxt]. *)
let exec_stage t (cs : Compile.compiled_stage) s =
  let width = t.width in
  Array.blit t.cur (s * width) t.phv_scratch 0 width;
  let phv = t.phv_scratch in
  let args = t.args.(s) in
  let stateless = cs.Compile.cs_stateless and stateful = cs.Compile.cs_stateful in
  let nsl = Array.length stateless and nsf = Array.length stateful in
  for i = 0 to nsl - 1 do
    let alu = Array.unsafe_get stateless i in
    alu.Compile.ca_env.Compile.phv <- phv;
    args.(i) <- alu.Compile.ca_run ()
  done;
  for j = 0 to nsf - 1 do
    let alu = Array.unsafe_get stateful j in
    alu.Compile.ca_env.Compile.phv <- phv;
    args.(nsl + j) <- alu.Compile.ca_run ()
  done;
  (* post-execution state_0 ("write half"), selectable by the muxes *)
  for j = 0 to nsf - 1 do
    args.(nsl + nsf + j) <- (Array.unsafe_get stateful j).Compile.ca_env.Compile.state.(0)
  done;
  let n = nsl + (2 * nsf) + 1 in
  let muxes = cs.Compile.cs_output_muxes in
  let dst = (s + 1) * width in
  for c = 0 to width - 1 do
    args.(n - 1) <- phv.(c);
    t.nxt.(dst + c) <- (Array.unsafe_get muxes c) args
  done

(* Advances the pipeline by one tick; see {!Engine.tick_once} for the
   ping-pong/occupancy scheme (identical here). *)
let tick_once t =
  let depth = t.depth and width = t.width in
  let occ = t.occ in
  let new_occ = ref 0 in
  let stages = t.compiled.Compile.c_stages in
  for s = 0 to depth - 1 do
    if occ land (1 lsl s) <> 0 then begin
      exec_stage t (Array.unsafe_get stages s) s;
      new_occ := !new_occ lor (1 lsl (s + 1))
    end
  done;
  if occ land 1 <> 0 then begin
    Array.blit t.cur 0 t.nxt 0 width;
    new_occ := !new_occ lor 1
  end;
  let swapped = t.cur in
  t.cur <- t.nxt;
  t.nxt <- swapped;
  t.occ <- !new_occ;
  t.tick <- t.tick + 1;
  !new_occ land (1 lsl depth) <> 0

let inject t (phv : Phv.t) =
  Array.blit phv 0 t.cur 0 t.width;
  t.occ <- t.occ lor 1

let no_inject t = t.occ <- t.occ land lnot 1

let step t ~input =
  (match input with Some phv -> inject t phv | None -> no_inject t);
  if tick_once t then Some (Array.sub t.cur (t.depth * t.width) t.width) else None

(* The PHV at each stage boundary (fresh copies); see {!Engine.boundaries}.
   Index s = input of stage s, index depth = the PHV that exited on the last
   tick — the register-file view the time-travel debugger snapshots. *)
let boundaries t : Phv.t option array =
  Array.init (t.depth + 1) (fun s ->
      if t.occ land (1 lsl s) <> 0 then Some (Array.sub t.cur (s * t.width) t.width) else None)

let current_state t =
  Array.to_list t.compiled.Compile.c_stages
  |> List.concat_map (fun (cs : Compile.compiled_stage) ->
         Array.to_list cs.Compile.cs_stateful
         |> List.map (fun (alu : Compile.compiled_alu) ->
                (alu.Compile.ca_name, Array.copy alu.Compile.ca_env.Compile.state)))

(* Zeroes all persistent ALU state, so a compiled pipeline can be reused for
   independent simulations (e.g. benchmark iterations). *)
let reset (compiled : Compile.t) =
  Array.iter
    (fun (cs : Compile.compiled_stage) ->
      Array.iter
        (fun (alu : Compile.compiled_alu) ->
          Array.fill alu.Compile.ca_env.Compile.state 0
            (Array.length alu.Compile.ca_env.Compile.state)
            0)
        cs.Compile.cs_stateful)
    compiled.Compile.c_stages

(* Preloads stateful-ALU state vectors (keyed by ALU name), modelling
   control-plane register initialization.  The init list is indexed into a
   hash table once instead of an assoc scan per ALU. *)
let load_state (compiled : Compile.t) init =
  match init with
  | [] -> ()
  | _ ->
    let tbl = Hashtbl.create (max 16 (List.length init)) in
    (* first binding wins, like List.assoc on the original init list *)
    List.iter
      (fun (name, values) -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name values)
      init;
    Array.iter
      (fun (cs : Compile.compiled_stage) ->
        Array.iter
          (fun (alu : Compile.compiled_alu) ->
            match Hashtbl.find_opt tbl alu.Compile.ca_name with
            | Some values ->
              let vec = alu.Compile.ca_env.Compile.state in
              Array.blit values 0 vec 0 (min (Array.length values) (Array.length vec))
            | None -> ())
          cs.Compile.cs_stateful)
      compiled.Compile.c_stages

(* The steady-state hot path: re-arms the engine (zeroed or [init]-preloaded
   state, empty register file), feeds [inputs] one per tick, drains, and
   blits each exiting PHV into [buf] (cleared first).  With a presized
   buffer, nothing is allocated per PHV.  Final state is read separately via
   {!current_state}. *)
let run_into ?(init = []) ?budget t ~inputs (buf : Trace.Buffer.t) =
  reset t.compiled;
  load_state t.compiled init;
  t.occ <- 0;
  t.tick <- 0;
  Trace.Buffer.clear buf;
  (* one unit of fuel per tick; see {!Engine.run_into} *)
  let spend =
    match budget with None -> ignore | Some b -> fun () -> Budget.spend b
  in
  let out_off = t.depth * t.width in
  List.iter
    (fun phv ->
      spend ();
      inject t phv;
      if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off)
    inputs;
  for _ = 1 to t.depth do
    spend ();
    no_inject t;
    if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off
  done

(* Batched mirror of {!run_into}: same contract and bit-identical traces
   and final state, but executed stage-major over lane chunks of [batch]
   PHVs through the vectorized kernels of {!Druzhba_pipeline.Vcompile}
   (built lazily, cached per batch capacity — like rustc compile time,
   vectorization time is excluded from the benchmark timers).  This is the
   Table-1 hot path: each stage's ALU sweeps a contiguous lane over the
   whole batch, so the per-PHV closure-dispatch cost of the scalar path is
   amortized [batch]-ways. *)
let run_batch_into ?(init = []) ?budget ?overlays ~batch t ~inputs (buf : Trace.Buffer.t) =
  reset t.compiled;
  load_state t.compiled init;
  t.occ <- 0;
  t.tick <- 0;
  let v =
    match t.vec with
    | Some v when Vcompile.cap v = batch -> v
    | _ ->
      let v = Vcompile.vectorize ~cap:batch t.compiled in
      t.vec <- Some v;
      v
  in
  let ops =
    {
      Batch.bo_cap = batch;
      bo_depth = t.depth;
      bo_width = t.width;
      bo_rows = Vcompile.rows v;
      bo_exec = (fun ~s ~k ~stuck -> Vcompile.exec_stage v ~s ~k ~stuck);
    }
  in
  Batch.run ?budget ?overlays ops ~inputs buf

(* Runs a complete simulation on a pre-compiled pipeline, starting from
   all-zero (or [init]-preloaded) state. *)
let run_compiled ?(init = []) (compiled : Compile.t) ~inputs : Trace.t =
  let t = create compiled in
  let buf = Trace.Buffer.create ~width:t.width ~capacity:(List.length inputs) in
  run_into ~init t ~inputs buf;
  { Trace.inputs; outputs = Trace.Buffer.contents buf; final_state = current_state t }

(* Convenience: compile then run. *)
let run ?init (desc : Ir.t) ~mc ~inputs : Trace.t =
  run_compiled ?init (Compile.compile desc ~mc) ~inputs
