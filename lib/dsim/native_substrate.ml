(* The native-codegen substrate: emit real OCaml from the pipeline IR,
   compile it out-of-process with `ocamlfind ocamlopt -shared`, Dynlink the
   resulting `.cmxs` back in, and drive it behind the {!Substrate} contract.

   This reproduces the paper's actual dgen methodology: dgen writes Rust
   source that rustc compiles together with dsim, and the measured artifact
   is the generated code (§3.4, Table 1).  The interpreter and the closure
   backend remain the slow references that keep this fast generated artifact
   honest — the campaign oracle diffs all of them.

   Layers:
   - {b emission}: {!Druzhba_pipeline.Emit.native_source} renders the IR as
     a self-contained module (machine code baked in, no hashtables or
     closures on the tick path) that registers itself through {!Native_abi}.
   - {b build cache}: compiled `.cmxs` artifacts are content-addressed by a
     digest of (emitted source, compiler version, ABI version) in an
     on-disk cache shared by concurrent processes — publication reuses the
     checkpoint writer's atomic tmp + fsync + rename discipline, so forked
     service workers racing on one program never observe torn artifacts.
   - {b degradation}: every entry point returns [Error reason] instead of
     raising when the toolchain is unavailable (no ocamlfind, bytecode
     host, no cmi directory, or [DRUZHBA_NATIVE_DISABLE] set); callers fall
     back to the interpreted paths with a structured note.
   - {b driver}: the runtime mirrors {!Compiled} tick-for-tick (ping-pong
     register file, occupancy bitmask, budget spends, fault overlays), so
     traces, final state, and fuel accounting are bit-identical to the
     Engine/Compiled substrates by construction of the emitted code.

   Environment knobs: [DRUZHBA_NATIVE_DISABLE] forces unavailability (the
   CI no-toolchain job and the skip-path tests use it);
   [DRUZHBA_NATIVE_CACHE_DIR] overrides the cache location (default
   `<tmpdir>/druzhba-native-cache`); [DRUZHBA_NATIVE_INCLUDE] pins the
   directory holding `druzhba_dsim.cmi` when auto-discovery cannot find the
   dune build tree. *)

module Ir = Druzhba_pipeline.Ir
module Emit = Druzhba_pipeline.Emit
module Machine_code = Druzhba_machine_code.Machine_code
module Atomic_file = Druzhba_util.Atomic_file

(* --- Toolchain discovery ---------------------------------------------------- *)

type toolchain = { tc_ocamlfind : string; tc_include : string }

let find_in_path exe =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
    String.split_on_char ':' path
    |> List.find_map (fun dir ->
           if dir = "" then None
           else
             let p = Filename.concat dir exe in
             match Unix.access p [ Unix.X_OK ] with
             | () -> if Sys.is_directory p then None else Some p
             | exception Unix.Unix_error (_, _, _) -> None)

let has_cmis dir =
  Sys.file_exists (Filename.concat dir "druzhba_dsim.cmi")
  && Sys.file_exists (Filename.concat dir "druzhba_dsim__Native_abi.cmi")

(* The emitted module references [Druzhba_dsim.Native_abi], so ocamlopt
   needs the cmi of the wrapped library.  In a dune tree those live in
   `_build/default/lib/dsim/.druzhba_dsim.objs/byte`; we look for that
   directory upward from the running executable and from the cwd, which
   covers `dune exec`, the installed `_build` binaries, and the test
   runner. *)
let discover_include () =
  match Sys.getenv_opt "DRUZHBA_NATIVE_INCLUDE" with
  | Some dir when dir <> "" -> if has_cmis dir then Some dir else None
  | _ ->
    let objs = Filename.concat "lib/dsim" ".druzhba_dsim.objs/byte" in
    let candidates root =
      [ Filename.concat root objs; Filename.concat (Filename.concat root "_build/default") objs ]
    in
    let rec walk dir n =
      if n = 0 then None
      else
        match List.find_opt has_cmis (candidates dir) with
        | Some found -> Some found
        | None ->
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else walk parent (n - 1)
    in
    let exe_dir = try Filename.dirname Sys.executable_name with Sys_error _ -> "." in
    let cwd = try Sys.getcwd () with Sys_error _ -> "." in
    (match walk exe_dir 8 with Some d -> Some d | None -> walk cwd 8)

let disabled () =
  match Sys.getenv_opt "DRUZHBA_NATIVE_DISABLE" with
  | Some s when s <> "" -> true
  | _ -> false

(* Probed per call (cheap stats), so tests can flip the environment at
   runtime and availability tracks it. *)
let probe () : (toolchain, string) result =
  if disabled () then Error "disabled via DRUZHBA_NATIVE_DISABLE"
  else if not Dynlink.is_native then
    Error "host is running bytecode (Dynlink.is_native = false); natdynlink unavailable"
  else
    match find_in_path "ocamlfind" with
    | None -> Error "ocamlfind not found on PATH"
    | Some ocamlfind -> (
      match discover_include () with
      | None ->
        Error
          "druzhba_dsim cmi directory not found (set DRUZHBA_NATIVE_INCLUDE to the \
           .druzhba_dsim.objs/byte directory)"
      | Some inc -> Ok { tc_ocamlfind = ocamlfind; tc_include = inc })

let available () : (unit, string) result = Result.map (fun _ -> ()) (probe ())

(* --- Content-addressed build cache ------------------------------------------ *)

let cache_dir () =
  match Sys.getenv_opt "DRUZHBA_NATIVE_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.concat (Filename.get_temp_dir_name ()) "druzhba-native-cache"

let rec mkdir_p dir =
  if (not (Sys.file_exists dir)) && not (String.equal dir (Filename.dirname dir)) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The content address covers everything the artifact depends on: the
   emitted source (itself a pure function of description + machine code),
   the compiler that built it, and the host ABI the module registers
   through.  Equal key => interchangeable `.cmxs`. *)
let content_key source =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "druzhba-native|abi=%d|%s|%s" Native_abi.version Sys.ocaml_version source))

let module_name key = "druzhba_native_" ^ key

(* Where the build cache holds (or would hold) the artifact for this
   (description, machine code) under the current environment.  Exposed so
   tests and operators can inspect, pre-seed, or evict cache entries; note
   that within one process a path that has already been Dynlinked is served
   from the loader's handle cache, so editing it has no effect until a
   fresh process reads it. *)
let artifact_path (desc : Ir.t) ~mc =
  Filename.concat (cache_dir ()) (module_name (content_key (Emit.native_source desc ~mc)) ^ ".cmxs")

let remove_tree dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ()) entries;
    (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ())

let read_file_tail path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> ""
  | s ->
    let s = String.trim s in
    if String.length s <= 2000 then s else String.sub s (String.length s - 2000) 2000

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | (_, status) -> status

let run_command argv ~stderr_file : (unit, string) result =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
  let err_fd =
    Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  let pid =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close devnull with Unix.Unix_error (_, _, _) -> ());
        try Unix.close err_fd with Unix.Unix_error (_, _, _) -> ())
      (fun () -> Unix.create_process argv.(0) argv devnull err_fd err_fd)
  in
  match waitpid_retry pid with
  | Unix.WEXITED 0 -> Ok ()
  | Unix.WEXITED n -> Error (Printf.sprintf "exit %d: %s" n (read_file_tail stderr_file))
  | Unix.WSIGNALED n | Unix.WSTOPPED n ->
    Error (Printf.sprintf "signal %d: %s" n (read_file_tail stderr_file))

(* Build-cache instrumentation, read by tests and the bench report. *)
type stats = { st_compiles : int; st_cache_hits : int; st_memo_hits : int }

let n_compiles = ref 0
let n_cache_hits = ref 0
let n_memo_hits = ref 0

(* Compiles [source] into the cache if no artifact for [key] exists yet;
   returns the cached `.cmxs` path.  Staging happens in a per-pid build
   directory (ocamlopt writes its .cmi/.cmx/.o next to the source, and the
   module name must match the final file name), and publication is an
   atomic rename — two processes racing on one key each stage privately and
   the renames serialize. *)
let compile_cmxs tc ~source ~key : (string, string) result =
  let cache = cache_dir () in
  mkdir_p cache;
  let dest = Filename.concat cache (module_name key ^ ".cmxs") in
  if Sys.file_exists dest then begin
    incr n_cache_hits;
    Ok dest
  end
  else begin
    incr n_compiles;
    let build = Filename.concat cache (Printf.sprintf "build.%d.%s" (Unix.getpid ()) key) in
    mkdir_p build;
    let ml = Filename.concat build (module_name key ^ ".ml") in
    let cmxs = Filename.concat build (module_name key ^ ".cmxs") in
    let errf = Filename.concat build "stderr" in
    Out_channel.with_open_bin ml (fun oc -> Out_channel.output_string oc source);
    let argv =
      [|
        tc.tc_ocamlfind; "ocamlopt"; "-shared"; "-w"; "-a"; "-I"; tc.tc_include; "-o"; cmxs; ml;
      |]
    in
    let result =
      match run_command argv ~stderr_file:errf with
      | Error e -> Error (Printf.sprintf "ocamlfind ocamlopt failed (%s)" e)
      | Ok () ->
        if not (Sys.file_exists cmxs) then Error "ocamlfind ocamlopt produced no .cmxs"
        else begin
          Atomic_file.atomic_publish ~src:cmxs ~dest;
          Ok dest
        end
    in
    remove_tree build;
    result
  end

let load_cmxs path : (Native_abi.plugin, string) result =
  match Dynlink.loadfile_private path with
  | exception Dynlink.Error e -> Error (Dynlink.error_message e)
  | exception e -> Error (Printexc.to_string e)
  | () -> (
    match Native_abi.take () with
    | Some p -> Ok p
    | None -> Error "loaded module did not register a plugin")

(* Dynlink is not safe for concurrent use and the campaign runner shards
   trials across domains, so every load (and in-process compile) runs under
   one global mutex.  Loaded plugins are memoized per content key: the
   emitted code is pure over caller-provided arrays, so one plugin instance
   serves any number of substrate values concurrently. *)
let lock = Mutex.create ()
let memo : (string, Native_abi.plugin) Hashtbl.t = Hashtbl.create 16

let stats () =
  Mutex.protect lock (fun () ->
      { st_compiles = !n_compiles; st_cache_hits = !n_cache_hits; st_memo_hits = !n_memo_hits })

(* Drops the in-process plugin memo (the on-disk cache is untouched); test
   hook for exercising cache hit and corrupted-artifact paths. *)
let clear_memo () = Mutex.protect lock (fun () -> Hashtbl.reset memo)

let plugin_for (desc : Ir.t) ~mc : (Native_abi.plugin, string) result =
  match probe () with
  | Error e -> Error e
  | Ok tc ->
    let source = Emit.native_source desc ~mc in
    let key = content_key source in
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt memo key with
        | Some p ->
          incr n_memo_hits;
          Ok p
        | None ->
          let result =
            match compile_cmxs tc ~source ~key with
            | Error e -> Error e
            | Ok path -> (
              match load_cmxs path with
              | Ok p -> Ok p
              | Error first -> (
                (* a corrupted cached artifact (torn write from a killed
                   process, stale compiler) is evicted and rebuilt once *)
                (try Sys.remove path with Sys_error _ -> ());
                match compile_cmxs tc ~source ~key with
                | Error e -> Error (Printf.sprintf "%s (after evicting corrupt cache: %s)" e first)
                | Ok path -> load_cmxs path))
          in
          (match result with
          | Ok p ->
            if p.Native_abi.np_depth <> desc.Ir.d_depth || p.Native_abi.np_width <> desc.Ir.d_width
            then Error "loaded plugin geometry does not match the description"
            else begin
              Hashtbl.replace memo key p;
              Ok p
            end
          | Error _ -> result))

(* --- Runtime driver ---------------------------------------------------------

   A faithful mirror of {!Compiled}: double-buffered flat (depth+1) x width
   register file, occupancy bitmask, one budget unit per tick, and the
   fault protocols of {!Faults.run_compiled}/{!Faults.run_compiled_batched}
   transcribed over the plugin's state rows. *)

type t = {
  plugin : Native_abi.plugin;
  label : string;
  depth : int;
  width : int;
  state : int array array; (* one row per stateful ALU, stage-major *)
  mutable cur : int array;
  mutable nxt : int array;
  mutable occ : int;
  mutable tick : int;
  mutable init : (string * int array) list;
  mutable rows : (int * Batch.rows) option; (* batched lane file, cached per capacity *)
}

let reset t = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.state

let load_state_rows t init =
  match init with
  | [] -> ()
  | _ ->
    let tbl = Hashtbl.create (max 16 (List.length init)) in
    (* first binding wins, like the scalar engines *)
    List.iter
      (fun (name, values) -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name values)
      init;
    Array.iteri
      (fun g row ->
        match Hashtbl.find_opt tbl t.plugin.Native_abi.np_state_names.(g) with
        | Some values -> Array.blit values 0 row 0 (min (Array.length values) (Array.length row))
        | None -> ())
      t.state

let tick_once t =
  let depth = t.depth and width = t.width in
  let occ = t.occ in
  let new_occ = ref 0 in
  let exec = t.plugin.Native_abi.np_exec_stage in
  for s = 0 to depth - 1 do
    if occ land (1 lsl s) <> 0 then begin
      exec t.state s t.cur t.nxt;
      new_occ := !new_occ lor (1 lsl (s + 1))
    end
  done;
  if occ land 1 <> 0 then begin
    Array.blit t.cur 0 t.nxt 0 width;
    new_occ := !new_occ lor 1
  end;
  let swapped = t.cur in
  t.cur <- t.nxt;
  t.nxt <- swapped;
  t.occ <- !new_occ;
  t.tick <- t.tick + 1;
  !new_occ land (1 lsl depth) <> 0

let inject t (phv : Phv.t) =
  Array.blit phv 0 t.cur 0 t.width;
  t.occ <- t.occ lor 1

let no_inject t = t.occ <- t.occ land lnot 1

let current_state t =
  Array.to_list
    (Array.mapi (fun g row -> (t.plugin.Native_abi.np_state_names.(g), Array.copy row)) t.state)

let apply_stuck t (plan : Faults.t) =
  List.iter
    (fun (s : Faults.stuck) ->
      t.state.(t.plugin.Native_abi.np_stage_bases.(s.Faults.sk_stage) + s.Faults.sk_alu).(s.Faults.sk_slot) <-
        s.Faults.sk_value)
    plan.Faults.fp_stuck

let rearm t =
  reset t;
  load_state_rows t t.init;
  t.occ <- 0;
  t.tick <- 0

let run_seq ?budget t ~inputs (buf : Trace.Buffer.t) =
  rearm t;
  Trace.Buffer.clear buf;
  let spend = match budget with None -> ignore | Some b -> fun () -> Budget.spend b in
  let out_off = t.depth * t.width in
  List.iter
    (fun phv ->
      spend ();
      inject t phv;
      if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off)
    inputs;
  for _ = 1 to t.depth do
    spend ();
    no_inject t;
    if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off
  done

let run_faults_seq ?budget plan t ~inputs (buf : Trace.Buffer.t) =
  rearm t;
  Trace.Buffer.clear buf;
  let spend = match budget with None -> ignore | Some b -> fun () -> Budget.spend b in
  apply_stuck t plan;
  let out_off = t.depth * t.width in
  List.iteri
    (fun i phv ->
      spend ();
      if i < Array.length plan.Faults.fp_dropped && plan.Faults.fp_dropped.(i) then no_inject t
      else begin
        inject t phv;
        Faults.apply_flips plan t.cur i
      end;
      if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off;
      apply_stuck t plan)
    inputs;
  for _ = 1 to t.depth do
    spend ();
    no_inject t;
    if tick_once t then Trace.Buffer.push buf t.cur ~off:out_off;
    apply_stuck t plan
  done

let run_batch ?budget ?overlays ~batch t ~inputs buf =
  rearm t;
  let rows =
    match t.rows with
    | Some (cap, rows) when cap = batch -> rows
    | _ ->
      let rows = Batch.create_rows ~depth:t.depth ~width:t.width ~cap:batch in
      t.rows <- Some (batch, rows);
      rows
  in
  let exec = t.plugin.Native_abi.np_exec_lanes in
  let ops =
    {
      Batch.bo_cap = batch;
      bo_depth = t.depth;
      bo_width = t.width;
      bo_rows = rows;
      bo_exec =
        (fun ~s ~k ~stuck -> exec t.state s (Array.unsafe_get rows s) (Array.unsafe_get rows (s + 1)) k stuck);
    }
  in
  Batch.run ?budget ?overlays ops ~inputs buf

let run_faults_batched ?budget ~batch plan t ~inputs buf =
  let overlays = Faults.primitives plan ~depth:t.depth in
  (try run_batch ?budget ~overlays ~batch t ~inputs buf
   with Budget.Exhausted as ex ->
     apply_stuck t plan;
     raise ex);
  apply_stuck t plan

module Native_sub = struct
  type nonrec t = t

  let name t = t.label
  let width t = t.width

  let load_state t init =
    t.init <- init;
    (* also arm the live state so step-based use sees the preload *)
    reset t;
    load_state_rows t init

  let run_into ?budget ?faults t ~inputs buf =
    match faults with
    | None -> run_seq ?budget t ~inputs buf
    | Some plan -> run_faults_seq ?budget plan t ~inputs buf

  let run_batch_into ?budget ?faults ~batch t ~inputs buf =
    match faults with
    | None -> run_batch ?budget ~batch t ~inputs buf
    | Some plan -> run_faults_batched ?budget ~batch plan t ~inputs buf

  let current_state = current_state

  let step t ~input =
    (match input with Some phv -> inject t phv | None -> no_inject t);
    if tick_once t then Some (Array.sub t.cur (t.depth * t.width) t.width) else None

  let boundaries t : Phv.t option array =
    Array.init (t.depth + 1) (fun s ->
        if t.occ land (1 lsl s) <> 0 then Some (Array.sub t.cur (s * t.width) t.width) else None)
end

(* [create ?label ?init desc ~mc] emits, compiles (or reuses a cached
   artifact), loads, and packs the native substrate.  [Error reason] means
   the toolchain is unavailable or the out-of-process compile failed; the
   caller degrades to the interpreted paths. *)
let create ?(label = "native") ?(init = []) (desc : Ir.t) ~mc : (Substrate.packed, string) result =
  match plugin_for desc ~mc with
  | Error e -> Error e
  | Ok plugin ->
    let depth = desc.Ir.d_depth and width = desc.Ir.d_width in
    if depth + 1 >= Sys.int_size then
      invalid_arg "Native_substrate.create: pipeline depth exceeds the occupancy bitmask";
    let t =
      {
        plugin;
        label;
        depth;
        width;
        state = plugin.Native_abi.np_alloc ();
        cur = Array.make ((depth + 1) * width) 0;
        nxt = Array.make ((depth + 1) * width) 0;
        occ = 0;
        tick = 0;
        init;
        rows = None;
      }
    in
    reset t;
    load_state_rows t init;
    Ok (Substrate.Packed ((module Native_sub), t))
