(* The execution-backend registry: every way this repo can turn a pipeline
   description + machine code into a {!Substrate.packed}, keyed by name.

   The oracle, the campaign runner, the service protocol, and the CLI all
   select backends through this table instead of hard-coding constructors,
   so adding a backend (as the native-codegen substrate did) is one entry
   here plus a campaign family — no plumbing changes.

   [be_available] is probed before [be_create]: a backend with external
   requirements (the native substrate needs ocamlfind + natdynlink) reports
   a structured reason instead of failing mid-campaign, and callers degrade
   gracefully. *)

module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Machine_code = Druzhba_machine_code.Machine_code

type entry = {
  be_name : string;
  be_description : string;
  be_available : unit -> (unit, string) result;
  be_create :
    ?label:string ->
    ?init:(string * int array) list ->
    Ir.t ->
    mc:Machine_code.t ->
    (Substrate.packed, string) result;
}

let always () = Ok ()

let interpreter =
  {
    be_name = "interpreter";
    be_description = "tree-walking reference interpreter (Engine)";
    be_available = always;
    be_create = (fun ?label ?init desc ~mc -> Ok (Substrate.of_engine ?label ?init desc ~mc));
  }

let compiled =
  {
    be_name = "compiled";
    be_description = "closure-compiled in-process backend (Compile + Compiled)";
    be_available = always;
    be_create =
      (fun ?label ?init desc ~mc -> Ok (Substrate.of_compiled ?label ?init (Compile.compile desc ~mc)));
  }

let native =
  {
    be_name = "native";
    be_description = "emitted OCaml compiled out-of-process and Dynlinked (.cmxs)";
    be_available = Native_substrate.available;
    be_create = (fun ?label ?init desc ~mc -> Native_substrate.create ?label ?init desc ~mc);
  }

let all = [ interpreter; compiled; native ]
let find name = List.find_opt (fun e -> String.equal e.be_name name) all
let names () = List.map (fun e -> e.be_name) all
