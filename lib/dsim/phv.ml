(* Packet header vectors.

   A PHV is the unit of work flowing through the pipeline: one container per
   pipeline width, each holding an unsigned integer of the datapath width
   (§2.2).  Parsing and matching are not modelled (§2.3): the traffic
   generator fills containers with random values directly. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng

type t = int array

let create ~width : t = Array.make width 0

let of_list vs : t = Array.of_list vs

let copy : t -> t = Array.copy

let width (t : t) = Array.length t

let get (t : t) k = t.(k)

let set (t : t) k v = t.(k) <- v

let random prng ~width ~bits : t = Array.init width (fun _ -> Prng.bits prng bits)

(* Monomorphic int-array comparison: [Phv.equal] sits on the differential
   oracle's hot path, where the polymorphic [=] would walk both arrays
   through the generic comparator on every call. *)
let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

(* Copies [src] into [dst] (which must be at least as wide) without
   allocating. *)
let blit (src : t) (dst : t) = Array.blit src 0 dst 0 (Array.length src)

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") int) t
