(* The registration ABI between the host and Dynlinked native pipeline
   modules.

   A module emitted by {!Druzhba_pipeline.Emit.native_source} is compiled
   out-of-process into a `.cmxs` and loaded with [Dynlink.loadfile_private];
   its only side effect is one call to {!register} with the plugin record
   below.  The host ({!Native_substrate}) performs the load under a global
   mutex and immediately {!take}s the slot, so concurrent domains never
   observe each other's registrations.

   The record is deliberately first-order — int arrays, Bigarray lanes, and
   plain functions — so the only thing the plugin and the host must agree on
   is this one module's cmi.  Bump {!version} whenever the record layout
   changes: it is folded into the build-cache content address, so stale
   `.cmxs` artifacts from an older ABI are never loaded. *)

let version = 1

type lane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type plugin = {
  np_depth : int;
  np_width : int;
  np_state_names : string array;
      (* stateful-ALU names, stage-major — one per state row of [np_alloc] *)
  np_stage_bases : int array;
      (* base state-row index per stage: row of (stage s, alu j) =
         np_stage_bases.(s) + j *)
  np_alloc : unit -> int array array;
      (* fresh zeroed state rows, one per stateful ALU, stage-major; row
         length = max 1 state_size *)
  np_exec_stage : int array array -> int -> int array -> int array -> unit;
      (* [exec_stage state s cur nxt]: run stage [s] on row s of the flat
         (depth+1) x width register file [cur], writing row s+1 of [nxt] *)
  np_exec_lanes :
    int array array -> int -> lane array -> lane array -> int -> (int * int * int) list -> unit;
      (* [exec_lanes state s inr outr k stuck]: batched stage execution over
         lanes 0..k-1, with per-stage stuck-at overlays (alu, slot, value) —
         the {!Batch.ops} [bo_exec] contract *)
}

let slot : plugin option ref = ref None
let register p = slot := Some p

let take () =
  let p = !slot in
  slot := None;
  p
