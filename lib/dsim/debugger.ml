(* Time-travel debugger for pipeline simulations (paper §7).

   The paper proposes "a domain specific time travel debugger for Druzhba
   ... setting breakpoints to observe PHV container and state values at
   different points of simulation.  Bi-directional traveling ... can allow
   testers to rewind pipeline simulation ticks to past pipeline states to
   trace origins of erroneous behavior."

   The debugger drives any {!Substrate.packed} through the substrate
   interface ([step]/[boundaries]/[current_state]) and records a full
   snapshot per tick (the inter-stage registers and every persistent state
   vector), so a session can step forward, rewind to any earlier tick in
   O(1), and scan for the first tick where a predicate fires (breakpoints
   on container or state values). *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir

type snapshot = {
  snap_tick : int;
  snap_regs : Phv.t option array; (* PHV at each stage boundary *)
  snap_state : (string * int array) list; (* per stateful ALU / register *)
  snap_output : Phv.t option; (* PHV that exited on this tick *)
}

type t = {
  substrate : Substrate.packed;
  inputs : Phv.t array; (* one per tick; missing ticks inject nothing *)
  mutable history : snapshot list; (* newest first; index = tick *)
  mutable cursor : int; (* tick the debugger is looking at *)
}

let snapshot_of substrate ~tick ~output =
  {
    snap_tick = tick;
    (* [Substrate.boundaries] already returns fresh copies of the rows *)
    snap_regs = Substrate.boundaries substrate;
    snap_state = Substrate.current_state substrate;
    snap_output = Option.map Phv.copy output;
  }

(* Starts a session over a fixed input trace (tick t injects [inputs.(t)] if
   present) on any substrate. *)
let start_on substrate ~inputs =
  {
    substrate;
    inputs = Array.of_list inputs;
    history = [ snapshot_of substrate ~tick:0 ~output:None ];
    cursor = 0;
  }

(* Starts a session on the interpreter engine (the historical entry point;
   [start_on] takes any backend). *)
let start ?init (desc : Ir.t) ~mc ~inputs =
  start_on (Substrate.of_engine ?init desc ~mc) ~inputs

let ticks_recorded t = List.length t.history

let cursor t = t.cursor

(* The snapshot at the cursor. *)
let current t : snapshot =
  let back = ticks_recorded t - 1 - t.cursor in
  List.nth t.history back

(* Runs the substrate one tick past the recorded history. *)
let extend t =
  let tick = ticks_recorded t - 1 in
  let input = if tick < Array.length t.inputs then Some t.inputs.(tick) else None in
  let output = Substrate.step t.substrate ~input in
  t.history <- snapshot_of t.substrate ~tick:(tick + 1) ~output :: t.history

(* Moves the cursor forward one tick, simulating on demand. *)
let step t =
  if t.cursor + 1 >= ticks_recorded t then extend t;
  t.cursor <- t.cursor + 1;
  current t

(* Moves the cursor back one tick (no-op at tick 0): time travel. *)
let step_back t =
  if t.cursor > 0 then t.cursor <- t.cursor - 1;
  current t

(* Jumps to an absolute tick, simulating forward as needed. *)
let goto t tick =
  if tick < 0 then invalid_arg "Debugger.goto: negative tick";
  while ticks_recorded t <= tick do
    extend t
  done;
  t.cursor <- tick;
  current t

(* --- Inspection ------------------------------------------------------------- *)

(* Value of container [c] of the PHV entering stage [stage] at the cursor
   (stage = depth is the exiting boundary). *)
let container t ~stage ~container:c =
  let snap = current t in
  if stage < 0 || stage >= Array.length snap.snap_regs then None
  else Option.map (fun phv -> phv.(c)) snap.snap_regs.(stage)

(* State slot [slot] of the stateful ALU named [alu] at the cursor. *)
let state t ~alu ~slot =
  let snap = current t in
  Option.map (fun vec -> vec.(slot)) (List.assoc_opt alu snap.snap_state)

(* --- Breakpoints ------------------------------------------------------------- *)

type breakpoint = snapshot -> bool

let break_on_state ~alu ~slot ~value : breakpoint =
 fun snap ->
  match List.assoc_opt alu snap.snap_state with
  | Some vec -> slot < Array.length vec && vec.(slot) = value
  | None -> false

let break_on_output ~container ~pred : breakpoint =
 fun snap ->
  match snap.snap_output with Some phv -> pred phv.(container) | None -> false

(* Runs forward (at most [limit] ticks past the cursor) until the breakpoint
   fires; leaves the cursor on the firing tick.  [None] if it never fired. *)
let continue_until ?(limit = 100_000) t (bp : breakpoint) =
  let rec go remaining =
    if remaining = 0 then None
    else
      let snap = step t in
      if bp snap then Some snap else go (remaining - 1)
  in
  go limit

(* Rewinds (towards tick 0) to the most recent earlier tick where the
   breakpoint fired. *)
let rewind_until t (bp : breakpoint) =
  let rec go () =
    if t.cursor = 0 then None
    else
      let snap = step_back t in
      if bp snap then Some snap else go ()
  in
  go ()

(* First tick at which two sessions diverge on [observed] exiting
   containers — the "trace origins of erroneous behavior" workflow: run the
   buggy and reference machine code side by side, find the divergence tick,
   then rewind either session from there. *)
let first_divergence ?(limit = 100_000) ~observed a b =
  let rec go remaining =
    if remaining = 0 then None
    else
      let sa = step a and sb = step b in
      let differs =
        match (sa.snap_output, sb.snap_output) with
        | Some x, Some y -> List.exists (fun c -> x.(c) <> y.(c)) observed
        | None, None -> false
        | Some _, None | None, Some _ -> true
      in
      if differs then Some sa.snap_tick else go (remaining - 1)
  in
  go limit

let pp_snapshot ppf snap =
  Fmt.pf ppf "@[<v>tick %d:@," snap.snap_tick;
  Array.iteri
    (fun s phv ->
      match phv with
      | Some phv -> Fmt.pf ppf "  stage %d input: %a@," s Phv.pp phv
      | None -> ())
    snap.snap_regs;
  List.iter
    (fun (alu, vec) -> Fmt.pf ppf "  %s = [%a]@," alu Fmt.(array ~sep:(any "; ") int) vec)
    snap.snap_state;
  (match snap.snap_output with
  | Some phv -> Fmt.pf ppf "  exited: %a@," Phv.pp phv
  | None -> ());
  Fmt.pf ppf "@]"
