(* Reproduction of the paper's Table 1: RMT simulation runtimes for the 12
   packet programs, unoptimized vs SCC propagation vs SCC + function
   inlining, 50 000 PHVs each (§5.1).

   Each program is compiled by the rule-based backend at the pipeline
   dimensions Table 1 lists; its machine code then drives three simulations
   of the same random PHV trace, one per optimization level of the pipeline
   description.  The execution backend is any {!Druzhba_dsim.Backends}
   registry name:

   - ["compiled"]: the description is compiled to closures beforehand (the
     analogue of the paper's rustc-compiled description; compilation time is
     excluded, as the paper excludes rustc time).  This is the configuration
     Table 1 corresponds to.
   - ["interpreter"]: the description IR is interpreted directly.  This is an
     ablation unavailable in the original system: it shows what inlining is
     worth when no compiler cleans up the call structure.
   - ["native"]: the description is emitted as real OCaml, compiled
     out-of-process and Dynlinked — the closest analogue of the paper's
     dgen + rustc methodology.  @raise Failure when the toolchain is
     unavailable (the bench driver degrades instead of crashing). *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

type mode = string (* a {!Druzhba_dsim.Backends} registry name *)

type row = {
  row_program : string;
  row_depth : int;
  row_width : int;
  row_alu : string;
  row_unopt_ms : float;
  row_scc_ms : float;
  row_inline_ms : float;
}

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  (Unix.gettimeofday () -. t0) *. 1000.

let run_benchmark ?(phvs = 50_000) ?(seed = 0xD52ba) ?(batch = Substrate.default_batch)
    ~(mode : mode) (bm : Spec.benchmark) : row =
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
  let inputs = Traffic.phvs (Traffic.create ~seed ~width:bm.Spec.bm_width ~bits:32) phvs in
  let v2 = Optimizer.scc_propagate ~mc desc in
  let v3 = Optimizer.inline_functions v2 in
  (* Substrate construction, output buffer and trace freeze sit outside the
     timer: the measurement is the steady-state tick path (the paper's
     Table 1 likewise excludes rustc compilation time).  Both modes run
     through the uniform {!Substrate} interface. *)
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:phvs in
  let measure d =
    let backend =
      match Backends.find mode with
      | Some be -> be
      | None ->
        invalid_arg
          (Printf.sprintf "Table1.run_benchmark: unknown backend %S (expected one of %s)" mode
             (String.concat ", " (Backends.names ())))
    in
    let substrate =
      match backend.Backends.be_create ~init d ~mc with
      | Ok s -> s
      | Error reason -> failwith (Printf.sprintf "backend %S unavailable: %s" mode reason)
    in
    (* warm once outside the timer so lazy vectorization (the analogue of
       rustc compile time) is excluded, like closure compilation above *)
    Substrate.run_batch_into ~batch substrate ~inputs:[] buf;
    time_ms (fun () -> Substrate.run_batch_into ~batch substrate ~inputs buf)
  in
  {
    row_program = bm.Spec.bm_name;
    row_depth = bm.Spec.bm_depth;
    row_width = bm.Spec.bm_width;
    row_alu = bm.Spec.bm_stateful;
    row_unopt_ms = measure desc;
    row_scc_ms = measure v2;
    row_inline_ms = measure v3;
  }

let run ?phvs ?seed ?batch ?(mode = "compiled") () : row list =
  List.map (fun bm -> run_benchmark ?phvs ?seed ?batch ~mode bm) Spec.all

let pp_row ppf r =
  Fmt.pf ppf "%-18s %d,%-2d %-12s %10.0f %16.0f %21.0f" r.row_program r.row_depth r.row_width
    r.row_alu r.row_unopt_ms r.row_scc_ms r.row_inline_ms

let pp ppf rows =
  Fmt.pf ppf "@[<v>%-18s %-4s %-12s %10s %16s %21s@," "Program" "d,w" "ALU" "Unopt (ms)"
    "SCC prop (ms)" "+ Func inlining (ms)";
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_row r) rows;
  Fmt.pf ppf "@]"

(* Shape checks corresponding to the paper's observations: optimization
   helps everywhere, inlining adds (almost) nothing on the compiled
   substrate, and the biggest pipelines gain the most. *)
let speedup r = r.row_unopt_ms /. r.row_scc_ms

let summary ppf rows =
  let avg f = List.fold_left (fun a r -> a +. f r) 0. rows /. float_of_int (List.length rows) in
  Fmt.pf ppf "mean speedup (unopt/scc): %.2fx; mean inline/scc ratio: %.2f@." (avg speedup)
    (avg (fun r -> r.row_inline_ms /. r.row_scc_ms))
