(* Reader for the machine-readable benchmark reports (BENCH_pr*.json).

   The bench harness emits a "druzhba-bench" document per PR: schema /1
   (PR 5, sequential tick path), /2 (PR 8, batched tick path; adds
   "batch", "batch_sweep", "probe_overhead" and per-level batch-agreement
   bits) and /3 (PR 10; adds per-level "native_*" fields for the
   Dynlinked native-codegen substrate, or a top-level
   "native_unavailable" reason when the build toolchain is absent).
   This module parses any of those versions into one row shape so the
   perf-trajectory tooling and the tests can diff reports across PRs
   without caring which harness wrote them.

   The parser is a minimal recursive-descent JSON reader over the subset
   the harness emits (objects, arrays, strings, numbers, booleans, null) —
   the container ships no JSON library, and the bench format is ours, so a
   ~100-line reader is cheaper than a dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* --- Parser ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  skip_ws cur;
  match peek cur with
  | Some d when d = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.sub cur.src cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else fail cur (Printf.sprintf "expected '%s'" word)

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' -> (
      cur.pos <- cur.pos + 1;
      match peek cur with
      | Some (('"' | '\\' | '/') as c) ->
        Buffer.add_char b c;
        cur.pos <- cur.pos + 1;
        go ()
      | Some 'n' ->
        Buffer.add_char b '\n';
        cur.pos <- cur.pos + 1;
        go ()
      | Some 't' ->
        Buffer.add_char b '\t';
        cur.pos <- cur.pos + 1;
        go ()
      | _ -> fail cur "unsupported escape")
    | Some c ->
      Buffer.add_char b c;
      cur.pos <- cur.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let numchar c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while cur.pos < String.length cur.src && numchar cur.src.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  match float_of_string_opt (String.sub cur.src start (cur.pos - start)) with
  | Some f -> f
  | None -> fail cur "malformed number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = Some '}' then begin
      cur.pos <- cur.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        let key = (skip_ws cur; parse_string cur) in
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          cur.pos <- cur.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          cur.pos <- cur.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail cur "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    cur.pos <- cur.pos + 1;
    skip_ws cur;
    if peek cur = Some ']' then begin
      cur.pos <- cur.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          cur.pos <- cur.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          cur.pos <- cur.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> fail cur "expected ',' or ']'"
      in
      elements []
    end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse (s : string) : (json, string) result =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos = String.length s then Ok v else Error "trailing garbage after document"
  | exception Parse_error msg -> Error msg

(* --- Accessors --------------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let float_field key j = Option.bind (member key j) to_float
let string_field key j = Option.bind (member key j) to_string
let bool_field key j = Option.bind (member key j) to_bool

(* --- Bench-report view -------------------------------------------------------- *)

type level_row = {
  br_program : string;
  br_level : string;
  br_ns_per_phv : float;
  br_seq_ns_per_phv : float option; (* schema /2 onwards *)
  br_agree : bool;
  br_native_ns_per_phv : float option; (* schema /3, toolchain present *)
  br_native_agree : bool option; (* schema /3, toolchain present *)
}

type t = {
  br_schema : string;
  br_pr : int;
  br_batch : int option; (* schema /2 onwards *)
  br_native_unavailable : string option; (* schema /3, toolchain absent *)
  br_rows : level_row list; (* program-major, level order as written *)
}

let supported_schemas = [ "druzhba-bench/1"; "druzhba-bench/2"; "druzhba-bench/3" ]

let of_json (j : json) : (t, string) result =
  match string_field "schema" j with
  | None -> Error "missing \"schema\""
  | Some schema when not (List.mem schema supported_schemas) ->
    Error (Printf.sprintf "unsupported schema %S" schema)
  | Some schema -> (
    let pr = match float_field "pr" j with Some f -> int_of_float f | None -> 0 in
    let batch = Option.map int_of_float (float_field "batch" j) in
    match Option.bind (member "programs" j) to_list with
    | None -> Error "missing \"programs\" array"
    | Some programs -> (
      let row_of_level program lj =
        match
          (string_field "level" lj, float_field "ns_per_phv" lj,
           bool_field "engine_compiled_agree" lj)
        with
        | Some level, Some ns, Some agree ->
          Some
            {
              br_program = program;
              br_level = level;
              br_ns_per_phv = ns;
              br_seq_ns_per_phv = float_field "seq_ns_per_phv" lj;
              br_agree = agree;
              br_native_ns_per_phv = float_field "native_ns_per_phv" lj;
              br_native_agree = bool_field "native_agree" lj;
            }
        | _ -> None
      in
      let rows =
        List.concat_map
          (fun pj ->
            match (string_field "program" pj, Option.bind (member "levels" pj) to_list) with
            | Some program, Some levels -> List.filter_map (row_of_level program) levels
            | _ -> [])
          programs
      in
      match rows with
      | [] -> Error "no level rows found under \"programs\""
      | _ ->
        Ok
          {
            br_schema = schema;
            br_pr = pr;
            br_batch = batch;
            br_native_unavailable = string_field "native_unavailable" j;
            br_rows = rows;
          }))

let of_string s = Result.bind (parse s) of_json

let of_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let find_row t ~program ~level =
  List.find_opt (fun r -> r.br_program = program && r.br_level = level) t.br_rows

(* Per-(program, level) speedup of [current] over [baseline]:
   baseline ns/PHV divided by current ns/PHV (higher is faster). *)
let speedups ~(baseline : t) ~(current : t) : (string * string * float) list =
  List.filter_map
    (fun r ->
      match find_row baseline ~program:r.br_program ~level:r.br_level with
      | Some b when r.br_ns_per_phv > 0. ->
        Some (r.br_program, r.br_level, b.br_ns_per_phv /. r.br_ns_per_phv)
      | _ -> None)
    current.br_rows

(* Within one schema /3 report: per-(program, level) speedup of the
   Dynlinked native substrate over the batched closure path — closure
   ns/PHV divided by native ns/PHV (higher means native is faster).
   Rows without native measurements (older schemas, or a report written
   on a toolchain-less machine) are skipped, so the join is empty when
   [br_native_unavailable] is set. *)
let native_speedups (t : t) : (string * string * float) list =
  List.filter_map
    (fun r ->
      match r.br_native_ns_per_phv with
      | Some nns when nns > 0. -> Some (r.br_program, r.br_level, r.br_ns_per_phv /. nns)
      | _ -> None)
    t.br_rows
