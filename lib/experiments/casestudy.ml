(* Reproduction of the paper's case study (§5.2).

   The paper tested Chipmunk, a program-synthesis compiler, by running its
   machine code through Druzhba: "Over 120 Chipmunk machine code programs
   were determined to be correct", and 8 failures were found — 2 from
   machine-code pairs missing from the input file (output-mux controls), and
   6 from machine code that only satisfied a limited range of values because
   the synthesis engine only handled narrow inputs in the allotted time.

   This harness regenerates that experiment's *shape* with our compilers:

   - a corpus of 120+ machine-code programs: every Table-1 benchmark plus
     parameter variants of the benchmarks with a natural tuning constant,
     each compiled by the rule-based backend and fuzz-tested at its paper
     dimensions;
   - 2 missing-pairs failures: output-mux pairs are deleted from otherwise
     correct programs, reproducing the paper's first failure class;
   - range failures: threshold kernels are synthesized by the CEGIS backend
     at a narrow bit width and fuzz-verified on a wider pipeline; the
     verification catches machine code that only satisfies small values. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Codegen = Druzhba.Compiler.Codegen
module Synth = Compiler.Synth
module Testing = Compiler.Testing
module Frontend = Compiler.Frontend

type class_ = Correct | Missing_pairs | Range_failure | Other_mismatch

type entry = {
  e_program : string;
  e_class : class_;
  e_detail : string;
}

type report = {
  entries : entry list;
  correct : int;
  missing_pairs : int;
  range_failures : int;
  other : int;
}

let class_of_outcome = function
  | Fuzz.Pass _ -> Correct
  | Fuzz.Missing_pairs _ -> Missing_pairs
  | Fuzz.Out_of_range_selectors _ -> Other_mismatch
  | Fuzz.Mismatch _ -> Other_mismatch

(* --- Corpus of correct programs ----------------------------------------------- *)

(* Parameter values for benchmarks with a tuning constant: 17 variants each,
   so the corpus exceeds the paper's "over 120" together with the
   constant-less benchmarks. *)
let variant_parameters = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 12; 15; 20; 25; 50; 75; 100; 200 ]

let corpus () =
  List.concat_map
    (fun (bm : Spec.benchmark) ->
      match bm.Spec.bm_variant with
      | None -> [ (bm.Spec.bm_name, bm.Spec.bm_source, bm) ]
      | Some variant ->
        List.map
          (fun param -> (Printf.sprintf "%s[%d]" bm.Spec.bm_name param, variant param, bm))
          variant_parameters)
    Spec.all

(* Each corpus entry is independent (compile + fuzz, no shared state), so
   the campaign runner shards them across domains; entry order is
   preserved, so reports are identical whatever [jobs] is. *)
let test_corpus ?(phvs = 1000) ?(jobs = 1) () : entry list =
  Campaign.Runner.parallel_map ~jobs
    (fun (name, source, bm) ->
      let program = Frontend.parse ~name source in
      match Codegen.compile ~target:(Spec.target bm) program with
      | Error e -> { e_program = name; e_class = Other_mismatch; e_detail = "compile error: " ^ e }
      | Ok compiled ->
        let outcome = Testing.check ~n:phvs compiled in
        {
          e_program = name;
          e_class = class_of_outcome outcome;
          e_detail = Fmt.str "%a" Fuzz.pp_outcome outcome;
        })
    (corpus ())

(* --- Failure class 1: missing machine-code pairs --------------------------------- *)

(* Deletes the machine-code pairs programming the output multiplexers of a
   stage — exactly the paper's "2 failures were due to missing machine code
   pairs from the input file to program the behavior of the pipeline's
   output multiplexers". *)
let inject_missing_pairs ?(phvs = 200) (bm : Spec.benchmark) : entry =
  let compiled = Spec.compile_exn bm in
  let mc = Machine_code.copy compiled.Codegen.c_mc in
  Array.iter
    (fun name -> Machine_code.remove mc name)
    compiled.Codegen.c_desc.Ir.d_stages.(0).Ir.s_output_muxes;
  let outcome = Druzhba.Workflow.test_machine_code ~phvs { compiled with Codegen.c_mc = mc } ~mc in
  {
    e_program = bm.Spec.bm_name ^ "[missing output muxes]";
    e_class = class_of_outcome outcome.Druzhba.Workflow.outcome;
    e_detail = Fmt.str "%a" Fuzz.pp_outcome outcome.Druzhba.Workflow.outcome;
  }

(* --- Failure class 2: narrow-width synthesis --------------------------------------- *)

(* Threshold kernels whose constants do not fit the synthesis width: the
   synthesized machine code is exact at [synth_bits] but wrong on wider
   inputs, like the case study's "pipeline simulation failing for large PHV
   container values over 100". *)
let range_kernels =
  [
    ("threshold_counter[128]", 128);
    ("threshold_counter[200]", 200);
    ("threshold_counter[300]", 300);
    ("threshold_counter[500]", 500);
    ("threshold_counter[640]", 640);
    ("threshold_counter[1000]", 1000);
  ]

let threshold_source threshold =
  Printf.sprintf
    {|
state total = 0;
transaction threshold_counter {
  if (pkt.size >= %d) {
    total = total + 1;
  }
}
|}
    threshold

let synth_range_failure ?(synth_bits = 4) ?(verify_bits = 10) ?(phvs = 2000) ?(budget = 120_000)
    (name, threshold) : entry =
  let program = Frontend.parse ~name (threshold_source threshold) in
  let target =
    Codegen.target ~depth:1 ~width:1 ~bits:verify_bits ~stateful:(Atoms.find_exn "pair")
      ~stateless:(Atoms.find_exn "stateless_full") ()
  in
  match
    Synth.synthesize
      {
        Synth.p_program = program;
        p_target = target;
        p_synth_bits = synth_bits;
        p_examples = 16;
        p_budget = budget;
        p_seed = 0xC41b + threshold;
      }
  with
  | Synth.Budget_exhausted { candidates } ->
    {
      e_program = name;
      e_class = Other_mismatch;
      e_detail = Printf.sprintf "synthesis budget exhausted (%d candidates)" candidates;
    }
  | Synth.Synthesized compiled ->
    let outcome = Testing.check ~n:phvs compiled in
    let detail =
      Fmt.str "synthesized at %d bits, verified at %d bits: %a" synth_bits verify_bits
        Fuzz.pp_outcome outcome
    in
    let e_class =
      match outcome with
      | Fuzz.Pass _ -> Correct
      | Fuzz.Missing_pairs _ -> Missing_pairs
      | Fuzz.Out_of_range_selectors _ -> Other_mismatch
      | Fuzz.Mismatch _ -> Range_failure (* narrow-width machine code caught wide *)
    in
    { e_program = name; e_class; e_detail = detail }

(* --- Full case study ------------------------------------------------------------------ *)

let run ?(phvs = 1000) ?synth_budget ?(jobs = 1) () : report =
  (* the atom library is lazy; force it before sharding onto domains *)
  Campaign.Runner.force_atoms ();
  let corpus_entries = test_corpus ~phvs ~jobs () in
  let missing =
    [ inject_missing_pairs (Spec.find_exn "sampling"); inject_missing_pairs (Spec.find_exn "rcp") ]
  in
  let ranged =
    Campaign.Runner.parallel_map ~jobs (synth_range_failure ?budget:synth_budget) range_kernels
  in
  let entries = corpus_entries @ missing @ ranged in
  let count c = List.length (List.filter (fun e -> e.e_class = c) entries) in
  {
    entries;
    correct = count Correct;
    missing_pairs = count Missing_pairs;
    range_failures = count Range_failure;
    other = count Other_mismatch;
  }

let pp ppf (r : report) =
  Fmt.pf ppf "@[<v>case study: %d machine-code programs tested@," (List.length r.entries);
  Fmt.pf ppf "  correct:          %d@," r.correct;
  Fmt.pf ppf "  missing pairs:    %d@," r.missing_pairs;
  Fmt.pf ppf "  range failures:   %d@," r.range_failures;
  Fmt.pf ppf "  other mismatches: %d@," r.other;
  List.iter
    (fun e ->
      if e.e_class <> Correct then Fmt.pf ppf "  failure: %-32s %s@," e.e_program e.e_detail)
    r.entries;
  Fmt.pf ppf "@]"
