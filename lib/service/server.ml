(* The daemon: a single-threaded select(2) event loop.

   One thread, no domains, no async runtime — the daemon's own work per
   tick is tiny (parse a request, poke the supervisor, write a response);
   all the heavy lifting happens in worker *processes*.  Single-threaded
   also means the journal, the job list, and the findings store need no
   locking, which is most of how a durability story stays auditable.

   Robustness posture, end to end:
   - bounded queue: POST /jobs sheds load with 503 + Retry-After once the
     backlog is full, instead of accepting work it will serve badly;
   - request deadline: a client that dribbles half a request gets a 408,
     not a held buffer;
   - every accepted job is journaled synchronously *before* the 201 goes
     out — kill -9 of the daemon after the client sees 201 cannot lose it;
   - on restart the journal replays, orphaned workers are cleaned up, and
     interrupted jobs resume from their checkpoints; finished reports are
     re-served byte-identically because they are deterministic artifacts
     on disk, not rows the daemon recomputes. *)

module Report = Druzhba_campaign.Report
module Checkpoint = Druzhba_campaign.Checkpoint

type config = {
  s_root : string;
  s_port : int; (* 0 = ephemeral; the bound port lands in root/port *)
  s_max_queue : int; (* queued-job bound before load shedding *)
  s_request_timeout : float; (* seconds to receive a complete request *)
  s_grace : float; (* shutdown: seconds workers get to reach a boundary *)
  s_sv : Supervisor.config;
}

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  c_deadline : float;
  mutable c_stream : string option; (* job id whose events we stream *)
  mutable c_sent_events : int;
}

let log fmt = Printf.ksprintf (fun s -> Printf.eprintf "[druzhba-serve] %s\n%!" s) fmt

(* --- Plumbing ---------------------------------------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* Synchronous response write.  The socket carries a send timeout, so a
   stalled client costs at most that; on any error the connection is
   simply dropped — the daemon never throws for a client's sake. *)
let send_and_close (c : conn) (payload : string) =
  (try
     Unix.clear_nonblock c.c_fd;
     Unix.setsockopt_float c.c_fd Unix.SO_SNDTIMEO 10.;
     Protocol.really_write c.c_fd (Bytes.of_string payload) 0 (String.length payload)
   with Unix.Unix_error (_, _, _) -> ());
  close_quietly c.c_fd

let send_keep (c : conn) (payload : string) =
  try
    Protocol.really_write c.c_fd (Bytes.of_string payload) 0 (String.length payload);
    true
  with Unix.Unix_error (_, _, _) ->
    close_quietly c.c_fd;
    false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Best-effort cleanup of workers orphaned by a previous daemon's death.
   Only pids whose /proc cmdline still looks like a druzhba campaign are
   signalled — pid reuse must not kill an innocent process. *)
let kill_orphans (pids : int list) =
  List.iter
    (fun pid ->
      let cmdline = Printf.sprintf "/proc/%d/cmdline" pid in
      match read_file cmdline with
      | exception _ -> ()
      | raw ->
        if
          String.split_on_char '\000' raw
          |> List.exists (fun a -> a = "campaign")
        then begin
          log "killing orphaned worker pid %d" pid;
          try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ()
        end)
    pids

(* --- Routing ----------------------------------------------------------------- *)

type action =
  | Respond of string (* full response bytes; close after *)
  | Stream of string (* start streaming events of job id *)

let split_path path =
  (* "/jobs/j0001/report" -> ["jobs"; "j0001"; "report"], query strings
     are not part of this API *)
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let not_found = Protocol.error_response ~status:404 "no such resource"

let route (sv : Supervisor.t) ~(quit : bool ref) ~(max_queue : int) (rq : Protocol.request) :
    action =
  let store = sv.Supervisor.store in
  match (rq.Protocol.rq_method, split_path rq.Protocol.rq_path) with
  | "GET", [ "healthz" ] ->
    Respond
      (Protocol.json_response ~status:200
         (Report.Obj
            [
              ("ok", Report.Bool true);
              ("workers", Report.Int sv.Supervisor.cfg.Supervisor.sv_workers);
              ("running", Report.Int (Supervisor.running_count sv));
              ("queued", Report.Int (Jobstore.count_state store Jobstore.Queued));
            ]))
  | "POST", [ "jobs" ] ->
    if !quit then
      Respond
        (Protocol.error_response ~headers:[ ("Retry-After", "30") ] ~status:503
           "daemon is shutting down")
    else if Jobstore.count_state store Jobstore.Queued >= max_queue then
      Respond
        (Protocol.error_response ~headers:[ ("Retry-After", "5") ] ~status:503
           "job queue is full")
    else (
      match Report.parse rq.Protocol.rq_body with
      | Error e -> Respond (Protocol.error_response ~status:400 ("bad JSON: " ^ e))
      | Ok spec -> (
        match Protocol.parse_submission spec with
        | Error e -> Respond (Protocol.error_response ~status:400 e)
        | Ok sb ->
          (* submit journals synchronously: after this line the job
             survives kill -9 of the daemon *)
          let j = Jobstore.submit store sb in
          log "accepted %s (%s)" j.Jobstore.j_id (Protocol.kind_name j.Jobstore.j_kind);
          Respond
            (Protocol.json_response ~status:201
               (Report.Obj [ ("id", Report.Str j.Jobstore.j_id) ]))))
  | "GET", [ "jobs" ] -> Respond (Protocol.json_response ~status:200 (Jobstore.status store))
  | "GET", [ "jobs"; id ] -> (
    match Jobstore.find store id with
    | Some j -> Respond (Protocol.json_response ~status:200 (Jobstore.job_status store j))
    | None -> Respond not_found)
  | "GET", [ "jobs"; id; "report" ] -> (
    match Jobstore.find store id with
    | None -> Respond not_found
    | Some j ->
      let path = Filename.concat (Jobstore.job_dir store j) "report.json" in
      if Sys.file_exists path then
        (* the report is served as the exact bytes the worker wrote:
           byte-identical across restarts, byte-identical to a CLI run
           with the same parameters *)
        Respond (Protocol.response ~status:200 (read_file path))
      else Respond (Protocol.error_response ~status:404 "report not ready"))
  | "GET", [ "jobs"; id; "log" ] -> (
    match Jobstore.find store id with
    | None -> Respond not_found
    | Some j ->
      let path = Filename.concat (Jobstore.job_dir store j) "worker.log" in
      if Sys.file_exists path then Respond (Protocol.response ~status:200 (read_file path))
      else Respond (Protocol.error_response ~status:404 "no log yet"))
  | "GET", [ "jobs"; id; "events" ] -> (
    match Jobstore.find store id with
    | Some j -> Stream j.Jobstore.j_id
    | None -> Respond not_found)
  | "GET", [ "findings" ] ->
    Respond (Protocol.json_response ~status:200 (Jobstore.findings_json sv.Supervisor.findings))
  | "POST", [ "shutdown" ] ->
    quit := true;
    Respond
      (Protocol.json_response ~status:200 (Report.Obj [ ("shutting_down", Report.Bool true) ]))
  | ("GET" | "POST"), _ -> Respond not_found
  | _ -> Respond (Protocol.error_response ~status:405 "method not allowed")

(* --- Event streaming ---------------------------------------------------------

   GET /jobs/ID/events holds the connection open and relays events.jsonl
   as chunked ndjson; the terminating zero-chunk goes out once the job is
   terminal.  The tail read is incremental by *count*, which is sound
   because events.jsonl is append-only. *)

let flush_stream (store : Jobstore.t) (c : conn) : bool (* keep connection *) =
  match c.c_stream with
  | None -> true
  | Some id -> (
    match Jobstore.find store id with
    | None ->
      send_and_close c Protocol.chunk_end;
      false
    | Some j ->
      let events = Jobstore.read_events store j in
      let fresh = List.filteri (fun i _ -> i >= c.c_sent_events) events in
      let alive =
        List.for_all (fun line -> send_keep c (Protocol.chunk (line ^ "\n"))) fresh
      in
      if not alive then false
      else begin
        c.c_sent_events <- c.c_sent_events + List.length fresh;
        match j.Jobstore.j_state with
        | Jobstore.Done | Jobstore.Quarantined ->
          let final =
            Report.to_string (Jobstore.job_status store j) ^ "\n"
          in
          let _ = send_keep c (Protocol.chunk final) in
          send_and_close c Protocol.chunk_end;
          false
        | Jobstore.Queued | Jobstore.Running -> true
      end)

(* --- The loop ----------------------------------------------------------------- *)

let run (cfg : config) : int =
  Jobstore.mkdir_p (Filename.concat cfg.s_root "jobs");
  match Jobstore.load cfg.s_root with
  | Error e ->
    log "cannot load journal: %s" e;
    1
  | Ok (store, orphans) ->
    kill_orphans orphans;
    let sv = Supervisor.create cfg.s_sv store in
    let replayed = List.length store.Jobstore.jobs in
    if replayed > 0 then
      log "journal replayed: %d job(s), %d queued for resume" replayed
        (Jobstore.count_state store Jobstore.Queued);
    (* replay itself is a durable state change (Running -> Queued) *)
    if replayed > 0 then Jobstore.save store;
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
    Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.s_port));
    Unix.listen listen_fd 64;
    let port =
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> cfg.s_port
    in
    (* the port file is how tests and scripts find an ephemeral daemon *)
    Checkpoint.atomic_write_string (Filename.concat cfg.s_root "port")
      (string_of_int port ^ "\n");
    let quit = ref false in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> quit := true));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> quit := true));
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    log "listening on 127.0.0.1:%d (root %s, %d workers)" port cfg.s_root
      cfg.s_sv.Supervisor.sv_workers;
    let conns : conn list ref = ref [] in
    let drop c =
      close_quietly c.c_fd;
      conns := List.filter (fun c' -> c' != c) !conns
    in
    let handle_request c (rq : Protocol.request) =
      match route sv ~quit ~max_queue:cfg.s_max_queue rq with
      | Respond payload ->
        send_and_close c payload;
        conns := List.filter (fun c' -> c' != c) !conns
      | Stream id ->
        (* switch the connection to chunked streaming mode; it stays in
           [conns] but no longer reads *)
        if send_keep c Protocol.stream_head then c.c_stream <- Some id
        else conns := List.filter (fun c' -> c' != c) !conns
    in
    let service_readable c =
      let chunk = Bytes.create 65536 in
      match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> drop c
      | 0 -> drop c
      | n -> (
        Buffer.add_subbytes c.c_buf chunk 0 n;
        match Protocol.parse_request (Buffer.contents c.c_buf) with
        | `Incomplete -> ()
        | `Bad msg ->
          send_and_close c (Protocol.error_response ~status:400 msg);
          conns := List.filter (fun c' -> c' != c) !conns
        | `Ok (rq, _consumed) -> handle_request c rq)
    in
    (* main loop: one select per ~100ms tick, or sooner when sockets are hot *)
    while not !quit do
      let now = Unix.gettimeofday () in
      let read_fds =
        listen_fd :: List.filter_map (fun c -> if c.c_stream = None then Some c.c_fd else None) !conns
      in
      let readable =
        match Unix.select read_fds [] [] 0.1 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      if List.mem listen_fd readable then begin
        match Unix.accept listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          conns :=
            { c_fd = fd; c_buf = Buffer.create 1024; c_deadline = now +. cfg.s_request_timeout;
              c_stream = None; c_sent_events = 0 }
            :: !conns
        | exception Unix.Unix_error (_, _, _) -> ()
      end;
      List.iter
        (fun c -> if c.c_stream = None && List.mem c.c_fd readable then service_readable c)
        (List.filter (fun c -> c.c_fd != listen_fd) !conns);
      (* enforce the request deadline on half-received requests *)
      List.iter
        (fun c ->
          if c.c_stream = None && now > c.c_deadline then begin
            send_and_close c (Protocol.error_response ~status:408 "request timeout");
            conns := List.filter (fun c' -> c' != c) !conns
          end)
        !conns;
      Supervisor.tick sv ~now ~quitting:false;
      conns := List.filter (fun c -> c.c_stream = None || flush_stream store c) !conns;
      Jobstore.save_if_dirty store
    done;
    (* --- graceful shutdown -------------------------------------------------
       SIGTERM the workers (they cut at the next block boundary and flush a
       final checkpoint), give them [s_grace] seconds, SIGKILL stragglers.
       Either way every interrupted job lands back in Queued, uncharged,
       with its checkpoint intact for the next daemon. *)
    log "shutting down: signalling %d worker(s)" (Supervisor.running_count sv);
    Supervisor.signal_workers sv Sys.sigterm;
    let deadline = Unix.gettimeofday () +. cfg.s_grace in
    while Supervisor.running_count sv > 0 && Unix.gettimeofday () < deadline do
      Supervisor.tick sv ~now:(Unix.gettimeofday ()) ~quitting:true;
      if Supervisor.running_count sv > 0 then Unix.sleepf 0.05
    done;
    if Supervisor.running_count sv > 0 then begin
      log "grace expired: killing %d straggler(s)" (Supervisor.running_count sv);
      Supervisor.signal_workers sv Sys.sigkill;
      let hard_deadline = Unix.gettimeofday () +. 5. in
      while Supervisor.running_count sv > 0 && Unix.gettimeofday () < hard_deadline do
        Supervisor.tick sv ~now:(Unix.gettimeofday ()) ~quitting:true;
        if Supervisor.running_count sv > 0 then Unix.sleepf 0.05
      done
    end;
    (* close any streaming clients with a clean final chunk *)
    List.iter
      (fun c ->
        if c.c_stream <> None then send_and_close c Protocol.chunk_end else close_quietly c.c_fd)
      !conns;
    Jobstore.save store;
    close_quietly listen_fd;
    log "journal saved; goodbye";
    0
