(* Durable job state for the fuzzing-farm daemon.

   One [store] owns a root directory:

     root/journal.json        every job's control state (versioned, written
                              with the same atomic tmp+fsync+rename
                              discipline as campaign checkpoints — kill -9
                              of the daemon loses nothing)
     root/jobs/<id>/          per-job working directory, cwd of the worker
       spec.json              the submission verbatim
       <submitted files>      inline artifacts from the submission
       checkpoint.ck          worker-owned campaign checkpoint
       report.json            worker-owned final report (atomic rename, so
                              existence implies completeness)
       worker.log             worker stdout/stderr, appended across attempts
       events.jsonl           append-only lifecycle trace (a torn tail from
                              a crash is tolerated on read)
     root/findings.json       dedup store of confirmed divergences across
                              all jobs, keyed by provenance slice

   The journal records *control* state only.  Trial results live in the
   workers' own checkpoints and reports, which are byte-deterministic, so
   replaying the journal after a crash is idempotent: a Running job goes
   back to Queued and the supervisor re-runs it from its checkpoint,
   regenerating identical bytes. *)

module Report = Druzhba_campaign.Report
module Checkpoint = Druzhba_campaign.Checkpoint

let format_tag = "druzhba-service-journal"
let version = 1

type state = Queued | Running | Done | Quarantined

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Quarantined -> "quarantined"

let state_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "quarantined" -> Some Quarantined
  | _ -> None

type job = {
  j_id : string;
  j_seq : int;
  j_kind : Protocol.kind;
  j_spec : Report.json;
  j_args : string list;
  j_trials : int;
  mutable j_state : state;
  mutable j_attempts : int; (* worker launches so far *)
  mutable j_verdict : string option; (* terminal classification *)
  mutable j_reason : string option; (* why quarantined / last failure *)
  mutable j_last_exit : string option; (* human description of last worker exit *)
  mutable j_pid : int option; (* live worker pid, daemon-local *)
  mutable j_progress : int; (* completed trials per last checkpoint *)
  mutable j_next_eligible : float; (* monotonic-ish deadline for backoff *)
  mutable j_started : float; (* when the current attempt launched *)
  mutable j_last_progress_t : float; (* last observed checkpoint advance *)
}

type t = {
  root : string;
  mutable jobs : job list; (* submission order, oldest first *)
  mutable next_seq : int;
  mutable dirty : bool; (* journal needs saving *)
}

let job_dir t (j : job) = Filename.concat (Filename.concat t.root "jobs") j.j_id
let journal_path root = Filename.concat root "journal.json"
let findings_path root = Filename.concat root "findings.json"

let find t id = List.find_opt (fun j -> j.j_id = id) t.jobs

let count_state t st =
  List.length (List.filter (fun j -> j.j_state = st) t.jobs)

(* --- Journal ----------------------------------------------------------------- *)

(* Only fields that survive a daemon restart are journaled; pid and the
   various timestamps are daemon-local and reset on replay. *)
let json_of_job (j : job) : Report.json =
  let opt_str = function Some s -> Report.Str s | None -> Report.Null in
  Report.Obj
    [
      ("id", Report.Str j.j_id);
      ("seq", Report.Int j.j_seq);
      ("kind", Report.Str (Protocol.kind_name j.j_kind));
      ("spec", j.j_spec);
      ("args", Report.List (List.map (fun a -> Report.Str a) j.j_args));
      ("trials", Report.Int j.j_trials);
      ("state", Report.Str (state_name j.j_state));
      ("attempts", Report.Int j.j_attempts);
      ("verdict", opt_str j.j_verdict);
      ("reason", opt_str j.j_reason);
      ("last_exit", opt_str j.j_last_exit);
      ("pid", match j.j_pid with Some p -> Report.Int p | None -> Report.Null);
    ]

let to_json (t : t) : Report.json =
  Report.Obj
    [
      ("format", Report.Str format_tag);
      ("version", Report.Int version);
      ("next_seq", Report.Int t.next_seq);
      ("jobs", Report.List (List.map json_of_job t.jobs));
    ]

exception Bad of string

let need msg = function Some v -> v | None -> raise (Bad msg)

let job_of_json (j : Report.json) : job * int option =
  let str key = need ("job field " ^ key) (Option.bind (Report.member key j) Report.to_str) in
  let int key = need ("job field " ^ key) (Option.bind (Report.member key j) Report.to_int) in
  let opt_str key =
    match Report.member key j with Some (Report.Str s) -> Some s | _ -> None
  in
  let kind = need "job kind" (Protocol.kind_of_name (str "kind")) in
  let state = need "job state" (state_of_name (str "state")) in
  let args =
    need "job args"
      (Option.bind (Report.member "args" j) Report.to_list)
    |> List.map (fun a -> need "job arg" (Report.to_str a))
  in
  let orphan = match Report.member "pid" j with Some (Report.Int p) -> Some p | _ -> None in
  ( {
      j_id = str "id";
      j_seq = int "seq";
      j_kind = kind;
      j_spec = need "job spec" (Report.member "spec" j);
      j_args = args;
      j_trials = int "trials";
      (* A job caught Running by a crash goes back to Queued: its worker is
         gone (or orphaned — the caller kills it) and its checkpoint carries
         the completed prefix.  Attempts are preserved so a poison job
         cannot dodge quarantine by crashing the daemon. *)
      j_state = (if state = Running then Queued else state);
      j_attempts = int "attempts";
      j_verdict = opt_str "verdict";
      j_reason = opt_str "reason";
      j_last_exit = opt_str "last_exit";
      j_pid = None;
      j_progress = 0;
      j_next_eligible = 0.;
      j_started = 0.;
      j_last_progress_t = 0.;
    },
    if state = Running then orphan else None )

let save (t : t) =
  Checkpoint.atomic_write_string (journal_path t.root) (Report.to_string (to_json t) ^ "\n");
  t.dirty <- false

let save_if_dirty t = if t.dirty then save t

(* [load root] returns the store plus the pids of workers that were alive
   when the previous daemon died (for best-effort cleanup).  A missing
   journal is a fresh farm; a corrupt one is an error the operator must
   resolve — silently discarding jobs is the one thing a durable queue
   must never do. *)
let load root : (t * int list, string) result =
  let path = journal_path root in
  if not (Sys.file_exists path) then Ok ({ root; jobs = []; next_seq = 0; dirty = false }, [])
  else
    let read_file p =
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Report.parse (read_file path) with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> (
      try
        let tag = Option.bind (Report.member "format" j) Report.to_str in
        let ver = Option.bind (Report.member "version" j) Report.to_int in
        if tag <> Some format_tag then raise (Bad "not a service journal");
        if ver <> Some version then
          raise (Bad (Printf.sprintf "unsupported journal version %s"
                        (match ver with Some v -> string_of_int v | None -> "?")));
        let next_seq = need "next_seq" (Option.bind (Report.member "next_seq" j) Report.to_int) in
        let jobs_json = need "jobs" (Option.bind (Report.member "jobs" j) Report.to_list) in
        let decoded = List.map job_of_json jobs_json in
        let orphans = List.filter_map snd decoded in
        Ok ({ root; jobs = List.map fst decoded; next_seq; dirty = false }, orphans)
      with Bad msg -> Error (Printf.sprintf "%s: %s" path msg))

(* --- Job creation ------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path contents =
  Checkpoint.atomic_write_string path contents

(* Admits a parsed submission: assigns the id, materializes the job
   directory with spec + inline files, journals synchronously (the 201
   reply must never outlive the daemon's knowledge of the job). *)
let submit (t : t) (sb : Protocol.submission) : job =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let j =
    {
      j_id = Printf.sprintf "j%04d" seq;
      j_seq = seq;
      j_kind = sb.Protocol.sb_kind;
      j_spec = sb.Protocol.sb_spec;
      j_args = sb.Protocol.sb_args;
      j_trials = sb.Protocol.sb_trials;
      j_state = Queued;
      j_attempts = 0;
      j_verdict = None;
      j_reason = None;
      j_last_exit = None;
      j_pid = None;
      j_progress = 0;
      j_next_eligible = 0.;
      j_started = 0.;
      j_last_progress_t = 0.;
    }
  in
  let dir = job_dir t j in
  mkdir_p dir;
  write_file (Filename.concat dir "spec.json") (Report.to_string sb.Protocol.sb_spec ^ "\n");
  List.iter
    (fun (name, contents) -> write_file (Filename.concat dir name) contents)
    sb.Protocol.sb_files;
  t.jobs <- t.jobs @ [ j ];
  save t;
  j

(* --- Lifecycle events -------------------------------------------------------- *)

(* Append-only ndjson; losing the tail in a crash is fine (events are an
   audit trail, not control state). *)
let event (t : t) (j : job) ~(now : float) (kind : string) (fields : (string * Report.json) list) =
  let line =
    Report.to_string
      (Report.Obj
         ([ ("t", Report.Int (int_of_float now)); ("event", Report.Str kind) ] @ fields))
  in
  let path = Filename.concat (job_dir t j) "events.jsonl" in
  try
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (line ^ "\n"))
  with Sys_error _ -> ()

let read_events (t : t) (j : job) : string list =
  let path = Filename.concat (job_dir t j) "events.jsonl" in
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
            (* drop a torn tail: only well-formed JSON lines count *)
            (match Report.parse line with
            | Ok _ -> go (line :: acc)
            | Error _ -> go acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

(* --- Status JSON ------------------------------------------------------------- *)

let job_status (t : t) (j : job) : Report.json =
  let opt_str = function Some s -> Report.Str s | None -> Report.Null in
  Report.Obj
    ([
       ("id", Report.Str j.j_id);
       ("kind", Report.Str (Protocol.kind_name j.j_kind));
       ("state", Report.Str (state_name j.j_state));
       ("attempts", Report.Int j.j_attempts);
       ("progress", Report.Int j.j_progress);
       ("trials", Report.Int j.j_trials);
       ("verdict", opt_str j.j_verdict);
       ("reason", opt_str j.j_reason);
       ("last_exit", opt_str j.j_last_exit);
       ("pid", match j.j_pid with Some p -> Report.Int p | None -> Report.Null);
     ]
    @
    if Sys.file_exists (Filename.concat (job_dir t j) "report.json") then
      [ ("report", Report.Str (Printf.sprintf "/jobs/%s/report" j.j_id)) ]
    else [])

let status (t : t) : Report.json =
  Report.Obj
    [
      ("jobs", Report.List (List.map (job_status t) t.jobs));
      ("queued", Report.Int (count_state t Queued));
      ("running", Report.Int (count_state t Running));
      ("done", Report.Int (count_state t Done));
      ("quarantined", Report.Int (count_state t Quarantined));
    ]

(* --- Findings dedup store ----------------------------------------------------

   Keyed by provenance slice: the generation parameters, the diverging
   backend config, the divergence site, and the shrunk essential machine-
   code pairs.  Two trials that differ only in seed or PHV values but hit
   the same compiler bug through the same program slice collapse to one
   finding; re-running a job after a crash cannot double-count. *)

let findings_tag = "druzhba-service-findings"

(* Canonical key text for one divergent trial record (trial JSON as emitted
   by Campaign.json_of_trial). *)
let finding_key (trial : Report.json) : string option =
  match Report.member "outcome" trial with
  | Some outcome
    when Report.member "class" outcome = Some (Report.Str "backend_divergence") ->
    let param_keys =
      [ "substrate"; "depth"; "width"; "bits"; "stateful"; "stateless";
        "tables"; "processors"; "entries" ]
    in
    let params =
      List.filter_map
        (fun k -> Option.map (fun v -> k ^ "=" ^ Report.to_string v) (Report.member k trial))
        param_keys
    in
    let site =
      List.filter_map
        (fun k -> Option.map Report.to_string (Report.member k outcome))
        [ "config"; "kind"; "where" ]
    in
    let essential =
      match Option.bind (Report.member "shrunk" trial) (Report.member "essential_pairs") with
      | Some (Report.List pairs) ->
        [ String.concat "," (List.sort compare (List.filter_map Report.to_str pairs)) ]
      | _ -> []
    in
    Some (String.concat "|" (params @ site @ essential))
  | _ -> None

type findings = {
  mutable fd_keys : (string * string) list; (* key -> first witnessing job id *)
}

let load_findings root : findings =
  let path = findings_path root in
  if not (Sys.file_exists path) then { fd_keys = [] }
  else
    let ic = open_in_bin path in
    let raw =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Report.parse raw with
    | Ok j when Option.bind (Report.member "format" j) Report.to_str = Some findings_tag ->
      let entries =
        match Option.bind (Report.member "findings" j) Report.to_list with
        | Some l ->
          List.filter_map
            (fun e ->
              match
                ( Option.bind (Report.member "key" e) Report.to_str,
                  Option.bind (Report.member "job" e) Report.to_str )
              with
              | Some k, Some job -> Some (k, job)
              | _ -> None)
            l
        | None -> []
      in
      { fd_keys = entries }
    | _ -> { fd_keys = [] }

let save_findings root (f : findings) =
  Checkpoint.atomic_write_string (findings_path root)
    (Report.to_string
       (Report.Obj
          [
            ("format", Report.Str findings_tag);
            ("version", Report.Int 1);
            ( "findings",
              Report.List
                (List.map
                   (fun (k, job) ->
                     Report.Obj [ ("key", Report.Str k); ("job", Report.Str job) ])
                   (List.rev f.fd_keys)) );
          ])
    ^ "\n")

(* Folds a finished job's report into the store; returns how many findings
   were new.  Reports are byte-deterministic, so folding the same report
   twice (journal replay) is a no-op. *)
let fold_report root (f : findings) ~(job_id : string) (report : Report.json) : int =
  let trials =
    match Option.bind (Report.member "results" report) Report.to_list with
    | Some l -> l
    | None -> []
  in
  let fresh = ref 0 in
  List.iter
    (fun trial ->
      match finding_key trial with
      | Some key when not (List.mem_assoc key f.fd_keys) ->
        f.fd_keys <- f.fd_keys @ [ (key, job_id) ];
        incr fresh
      | _ -> ())
    trials;
  if !fresh > 0 then save_findings root f;
  !fresh

let findings_json (f : findings) : Report.json =
  Report.Obj
    [
      ("count", Report.Int (List.length f.fd_keys));
      ( "findings",
        Report.List
          (List.map
             (fun (k, job) -> Report.Obj [ ("key", Report.Str k); ("job", Report.Str job) ])
             f.fd_keys) );
    ]
