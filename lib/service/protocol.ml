(* The wire protocol of `druzhba serve`.

   Two halves, both dependency-free by design (the container bakes in the
   OCaml toolchain and nothing else, so the daemon speaks HTTP/1.1 over
   plain [Unix] sockets with the repo's own JSON):

   - a minimal HTTP/1.1 codec: request parsing as a *restartable* function
     over the bytes received so far (the server feeds it after every read
     and gets [`Incomplete] until the head and the Content-Length body have
     fully arrived — no blocking parse, no thread per connection), response
     serialization, and the chunked-transfer framing used by the streamed
     progress endpoint;

   - the submission schema: what a client may POST to /jobs, validated
     strictly (unknown keys are a 400, not a silent ignore — a typoed
     "trails" must not quietly run a default campaign), and compiled down
     to the argv tail of the `druzhba campaign` worker the supervisor will
     fork for it.

   Also carries the tiny blocking HTTP client the tests and examples use. *)

module Report = Druzhba_campaign.Report

(* --- HTTP requests ----------------------------------------------------------- *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_headers : (string * string) list; (* header names lowercased *)
  rq_body : string;
}

let header name (rq : request) = List.assoc_opt (String.lowercase_ascii name) rq.rq_headers

(* Maximum accepted body: a submission is a campaign spec plus perhaps a
   few inline ALU/program files; anything larger is a client bug. *)
let max_body = 8 * 1024 * 1024

(* Find "\r\n\r\n" in [s]; return the offset just past it. *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
      Some (i + 4)
    else go (i + 1)
  in
  go 0

(* [parse_request buf] over the bytes received so far.  [`Ok (rq, used)]
   reports how many bytes the request consumed (pipelining is not
   supported; the server closes after one response, so [used] only guards
   against trailing garbage). *)
let parse_request (s : string) : [ `Ok of request * int | `Incomplete | `Bad of string ] =
  match find_head_end s with
  | None ->
    (* refuse to buffer unbounded garbage that never finishes a head *)
    if String.length s > 64 * 1024 then `Bad "request head too large" else `Incomplete
  | Some head_end -> (
    let head = String.sub s 0 (head_end - 4) in
    match String.split_on_char '\n' head with
    | [] -> `Bad "empty request"
    | request_line :: header_lines -> (
      let request_line = String.trim request_line in
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ]
        when (version = "HTTP/1.1" || version = "HTTP/1.0") && meth <> "" && path <> "" -> (
        let headers =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              if line = "" then None
              else
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                  Some
                    ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                      String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
            header_lines
        in
        let content_length =
          match List.assoc_opt "content-length" headers with
          | None -> Ok 0
          | Some v -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok n
            | _ -> Error "bad Content-Length")
        in
        match content_length with
        | Error e -> `Bad e
        | Ok len when len > max_body -> `Bad "request body too large"
        | Ok len ->
          if String.length s - head_end < len then `Incomplete
          else
            `Ok
              ( {
                  rq_method = meth;
                  rq_path = path;
                  rq_headers = headers;
                  rq_body = String.sub s head_end len;
                },
                head_end + len ))
      | _ -> `Bad (Printf.sprintf "malformed request line %S" request_line)))

(* --- HTTP responses ---------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> Printf.sprintf "Status %d" c

let response ?(headers = []) ~status body =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  Buffer.add_string buf "Content-Type: application/json\r\n";
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf "Connection: close\r\n\r\n";
  Buffer.add_string buf body;
  Buffer.contents buf

let json_response ?headers ~status j = response ?headers ~status (Report.to_string j ^ "\n")

let error_response ?headers ~status msg =
  json_response ?headers ~status (Report.Obj [ ("error", Report.Str msg) ])

(* Chunked framing for the streamed progress endpoint: headers first, then
   one chunk per event line, then the terminating zero chunk. *)
let stream_head =
  "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\
   Connection: close\r\n\r\n"

let chunk payload = Printf.sprintf "%x\r\n%s\r\n" (String.length payload) payload
let chunk_end = "0\r\n\r\n"

(* Tolerant de-chunker for the client side: concatenates chunk payloads,
   ignoring a torn tail (the stream may have been cut mid-chunk). *)
let dechunk (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    match String.index_from_opt s i '\r' with
    | None -> ()
    | Some j -> (
      match int_of_string_opt ("0x" ^ String.trim (String.sub s i (j - i))) with
      | None | Some 0 -> ()
      | Some len ->
        let start = j + 2 in
        if start + len <= n then begin
          Buffer.add_string buf (String.sub s start len);
          go (start + len + 2)
        end)
  in
  go 0;
  Buffer.contents buf

(* --- Submissions -------------------------------------------------------------

   POST /jobs accepts one JSON object.  Two kinds:

   {"kind": "campaign", ...}   a differential fuzz campaign; every knob of
                               `druzhba campaign` that is compatible with
                               checkpoint/resume is accepted
   {"kind": "directed",        replay a witness file (machine-code values +
    "witnesses": "...", ...}   ALU names + program specs in the established
                               druzhba-witnesses/1 format); deterministic,
                               so a restart is a clean rerun

   Either kind may carry {"files": {"name.alu": "...", ...}} — inline
   artifacts written into the job directory before the worker starts, so a
   submission can bring its own ALU DSL or .domino program and reference it
   by filename from the witness header. *)

type kind = Campaign | Directed

let kind_name = function Campaign -> "campaign" | Directed -> "directed"
let kind_of_name = function "campaign" -> Some Campaign | "directed" -> Some Directed | _ -> None

type submission = {
  sb_kind : kind;
  sb_spec : Report.json; (* the submission as received, persisted verbatim *)
  sb_args : string list; (* spec-derived argv tail for the worker *)
  sb_files : (string * string) list; (* written into the job dir *)
  sb_trials : int; (* total trials, for progress reporting *)
}

let obj_fields = function Report.Obj fields -> Ok fields | _ -> Error "submission must be a JSON object"

let ( let* ) = Result.bind

let get_int fields key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some (Report.Int v) -> Ok (Some v)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let get_str fields key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some (Report.Str v) -> Ok (Some v)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let get_bool fields key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some (Report.Bool v) -> Ok (Some v)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let positive key = function
  | Some v when v <= 0 -> Error (Printf.sprintf "field %S must be positive" key)
  | v -> Ok v

(* A submitted filename lands in the job directory: a bare, sane basename
   or nothing.  Path traversal is not a feature. *)
let safe_filename name =
  name <> "" && name <> "." && name <> ".."
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '_')
       name

let get_files fields =
  match List.assoc_opt "files" fields with
  | None -> Ok []
  | Some (Report.Obj files) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, Report.Str contents) :: rest ->
        if safe_filename name then go ((name, contents) :: acc) rest
        else Error (Printf.sprintf "unsafe file name %S" name)
      | (name, _) :: _ -> Error (Printf.sprintf "file %S must map to a string" name)
    in
    go [] files
  | Some _ -> Error "field \"files\" must be an object of name -> contents"

let reject_unknown fields allowed =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) ->
    Error
      (Printf.sprintf "unknown field %S (allowed: %s)" k
         (String.concat ", " (List.sort compare allowed)))
  | None -> Ok ()

let campaign_allowed =
  [
    "kind"; "trials"; "seed"; "substrate"; "phvs"; "checkpoint_every"; "fuel"; "max_failures";
    "shrink"; "max_probes"; "faults"; "fault_runs"; "faults_per_run"; "files";
    "chaos_kill_after"; "chaos_kill_file";
  ]

let directed_allowed = [ "kind"; "witnesses"; "phvs"; "seed"; "files" ]

let opt_flag flag = function Some v -> [ flag; string_of_int v ] | None -> []

let parse_campaign spec fields =
  let* () = reject_unknown fields campaign_allowed in
  let* trials = Result.bind (get_int fields "trials") (positive "trials") in
  let trials = Option.value trials ~default:100 in
  let* seed = get_int fields "seed" in
  let* substrate = get_str fields "substrate" in
  let* () =
    match substrate with
    | Some s when Druzhba_campaign.Campaign.families_of_name s = None ->
      Error
        (Printf.sprintf "unknown substrate %S (%s)" s
           (String.concat ", " Druzhba_campaign.Campaign.substrate_names))
    | _ -> Ok ()
  in
  let* phvs = Result.bind (get_int fields "phvs") (positive "phvs") in
  let* checkpoint_every = Result.bind (get_int fields "checkpoint_every") (positive "checkpoint_every") in
  let* fuel = Result.bind (get_int fields "fuel") (positive "fuel") in
  let* max_failures = Result.bind (get_int fields "max_failures") (positive "max_failures") in
  let* shrink = get_bool fields "shrink" in
  let* max_probes = Result.bind (get_int fields "max_probes") (positive "max_probes") in
  let* faults = get_bool fields "faults" in
  let* fault_runs = Result.bind (get_int fields "fault_runs") (positive "fault_runs") in
  let* faults_per_run = Result.bind (get_int fields "faults_per_run") (positive "faults_per_run") in
  let* chaos_kill_after = get_int fields "chaos_kill_after" in
  let* chaos_kill_file = get_str fields "chaos_kill_file" in
  let* files = get_files fields in
  let args =
    [ "campaign"; "--trials"; string_of_int trials ]
    @ opt_flag "--seed" seed
    @ (match substrate with Some s -> [ "--substrate"; s ] | None -> [])
    @ opt_flag "--phvs" phvs
    @ opt_flag "--checkpoint-every" checkpoint_every
    @ opt_flag "--trial-fuel" fuel
    @ opt_flag "--max-failures" max_failures
    @ (if shrink = Some false then [ "--no-shrink" ] else [])
    @ opt_flag "--max-probes" max_probes
    @ (if faults = Some true then [ "--faults" ] else [])
    @ opt_flag "--fault-runs" fault_runs
    @ opt_flag "--faults-per-run" faults_per_run
    @ opt_flag "--chaos-kill-after" chaos_kill_after
    @ (match chaos_kill_file with Some f -> [ "--chaos-kill-file"; f ] | None -> [])
  in
  Ok { sb_kind = Campaign; sb_spec = spec; sb_args = args; sb_files = files; sb_trials = trials }

let parse_directed spec fields =
  let* () = reject_unknown fields directed_allowed in
  let* witnesses = get_str fields "witnesses" in
  let* witnesses =
    match witnesses with
    | Some w when String.trim w <> "" -> Ok w
    | _ -> Error "directed submission requires a non-empty \"witnesses\" string"
  in
  let* phvs = Result.bind (get_int fields "phvs") (positive "phvs") in
  let* seed = get_int fields "seed" in
  let* files = get_files fields in
  if List.mem_assoc "witnesses.txt" files then Error "\"witnesses.txt\" is written by the service"
  else
    let args =
      [ "campaign"; "--directed"; "witnesses.txt" ] @ opt_flag "--phvs" phvs @ opt_flag "--seed" seed
    in
    Ok
      {
        sb_kind = Directed;
        sb_spec = spec;
        sb_args = args;
        sb_files = ("witnesses.txt", witnesses) :: files;
        sb_trials = 0;
      }

let parse_submission (spec : Report.json) : (submission, string) result =
  let* fields = obj_fields spec in
  let* kind = get_str fields "kind" in
  match Option.map kind_of_name kind with
  | None | Some None ->
    Error "submission requires \"kind\": \"campaign\" or \"directed\""
  | Some (Some Campaign) -> parse_campaign spec fields
  | Some (Some Directed) -> parse_directed spec fields

(* --- Blocking HTTP client (tests, examples, CLI probes) ---------------------- *)

let rec really_write fd bytes pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    really_write fd bytes (pos + n) (len - n)
  end

let read_all ?(timeout = 60.) fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then Buffer.contents buf
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> Buffer.contents buf
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* One request, one response: connect, send, read until the server closes.
   Returns (status, body); the raw head is parsed just enough for that. *)
let http ?(timeout = 60.) ~port ~meth ~path ?(body = "") () : (int * string, string) result =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | () ->
          let request =
            Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s"
              meth path (String.length body) body
          in
          really_write fd (Bytes.of_string request) 0 (String.length request);
          let raw = read_all ~timeout fd in
          (match find_head_end raw with
          | None -> Error (Printf.sprintf "truncated response: %S" raw)
          | Some head_end -> (
            match String.split_on_char ' ' (String.sub raw 0 (min 64 (String.length raw))) with
            | _ :: code :: _ -> (
              match int_of_string_opt code with
              | Some status ->
                let body = String.sub raw head_end (String.length raw - head_end) in
                let body =
                  (* the events endpoint streams chunked; everything else is
                     Content-Length framed *)
                  let head = String.lowercase_ascii (String.sub raw 0 head_end) in
                  let is_sub needle hay =
                    let nl = String.length needle and hl = String.length hay in
                    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
                    at 0
                  in
                  if is_sub "transfer-encoding: chunked" head then dechunk body else body
                in
                Ok (status, body)
              | None -> Error "unparseable status line")
            | _ -> Error "unparseable status line"))))
