(* The worker-pool supervisor.

   Workers are real `druzhba campaign` processes — fork + execv of the same
   binary the daemon runs as — not in-process domains.  That is the point:
   a worker that segfaults, gets kill -9'ed, or wedges in a pathological
   trial takes down nothing but itself, and the supervisor's only recovery
   tool is the one the paper's methodology already guarantees safe — re-run
   from the last checkpoint, which regenerates byte-identical results.

   The state machine per job:

     Queued --spawn--> Running --exit 0/1/3/4--> Done (verdict recorded)
                        |  \--exit 2----------> Quarantined (usage error:
                        |                        retrying cannot help)
                        |  \--signal/exit 5/hang--> Queued again, after
                        |          exponential backoff, attempts += 1
                        \--attempts >= retry budget--> Quarantined (poison)

   Hangs are detected two ways: a heartbeat (the worker's checkpoint file
   must keep advancing — campaign jobs only, since directed replays are
   short and checkpoint-free) and an absolute per-job deadline. *)

module Report = Druzhba_campaign.Report
module Checkpoint = Druzhba_campaign.Checkpoint
module Exit_code = Druzhba_campaign.Exit_code

type config = {
  sv_workers : int; (* pool size: max concurrent workers *)
  sv_retry_budget : int; (* attempts before a job is poison *)
  sv_backoff_base : float; (* seconds; first retry delay *)
  sv_backoff_cap : float; (* seconds; delay ceiling *)
  sv_heartbeat_timeout : float; (* max seconds without checkpoint progress; 0 = off *)
  sv_job_timeout : float; (* absolute seconds per attempt; 0 = off *)
  sv_worker_exe : string; (* absolute path: the child chdirs before execv *)
  sv_worker_jobs : int; (* --jobs for campaign workers *)
}

let default_config ~worker_exe =
  {
    sv_workers = 2;
    sv_retry_budget = 3;
    sv_backoff_base = 0.5;
    sv_backoff_cap = 5.0;
    sv_heartbeat_timeout = 60.;
    sv_job_timeout = 0.;
    sv_worker_exe = worker_exe;
    sv_worker_jobs = 1;
  }

(* Bounded exponential backoff: base, 2*base, 4*base, ... capped. *)
let backoff_delay ~base ~cap ~attempt =
  if attempt <= 0 then 0. else Float.min cap (base *. (2. ** float_of_int (attempt - 1)))

type t = { cfg : config; store : Jobstore.t; findings : Jobstore.findings }

let create cfg store = { cfg; store; findings = Jobstore.load_findings store.Jobstore.root }

(* --- Spawning ---------------------------------------------------------------- *)

let checkpoint_file = "checkpoint.ck"
let report_file = "report.json"

let worker_argv (sv : t) (j : Jobstore.job) =
  let tail =
    match j.Jobstore.j_kind with
    | Protocol.Campaign ->
      let dir = Jobstore.job_dir sv.store j in
      j.Jobstore.j_args
      @ [ "--checkpoint"; checkpoint_file ]
      @ (if Sys.file_exists (Filename.concat dir checkpoint_file) then [ "--resume" ] else [])
      @ [ "--report"; report_file; "--jobs"; string_of_int sv.cfg.sv_worker_jobs ]
    | Protocol.Directed -> j.Jobstore.j_args @ [ "--report"; report_file ]
  in
  Array.of_list ("druzhba" :: tail)

let spawn (sv : t) ~now (j : Jobstore.job) =
  let dir = Jobstore.job_dir sv.store j in
  let argv = worker_argv sv j in
  match Unix.fork () with
  | 0 ->
    (* child: sandbox into the job directory, log everything, become the
       worker.  Any exec failure is reported through the usage exit code so
       the supervisor quarantines instead of retrying forever. *)
    (try
       Sys.chdir dir;
       let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
       Unix.dup2 devnull Unix.stdin;
       Unix.close devnull;
       let log =
         Unix.openfile "worker.log" [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
       in
       Unix.dup2 log Unix.stdout;
       Unix.dup2 log Unix.stderr;
       Unix.close log;
       Unix.execv sv.cfg.sv_worker_exe argv
     with _ -> ());
    Stdlib.exit Exit_code.usage
  | pid ->
    j.Jobstore.j_state <- Jobstore.Running;
    j.Jobstore.j_attempts <- j.Jobstore.j_attempts + 1;
    j.Jobstore.j_pid <- Some pid;
    j.Jobstore.j_started <- now;
    j.Jobstore.j_last_progress_t <- now;
    sv.store.Jobstore.dirty <- true;
    Jobstore.event sv.store j ~now "spawn"
      [
        ("pid", Report.Int pid);
        ("attempt", Report.Int j.Jobstore.j_attempts);
        ("argv", Report.List (List.map (fun a -> Report.Str a) (Array.to_list argv)));
      ]

(* --- Progress / heartbeat ----------------------------------------------------

   The heartbeat is semantic, not a timer the worker must remember to pet:
   a campaign worker that is making progress necessarily advances its
   checkpoint every block.  A wedged worker (infinite loop inside one
   trial, stuck syscall) stops advancing and gets killed; the retry then
   resumes from the last good block. *)

let observe_progress (sv : t) ~now (j : Jobstore.job) =
  match j.Jobstore.j_kind with
  | Protocol.Directed -> ()
  | Protocol.Campaign -> (
    let path = Filename.concat (Jobstore.job_dir sv.store j) checkpoint_file in
    if Sys.file_exists path then
      match Checkpoint.load path with
      | Ok ck ->
        let completed = Checkpoint.completed_prefix ck in
        if completed > j.Jobstore.j_progress then begin
          j.Jobstore.j_progress <- completed;
          j.Jobstore.j_last_progress_t <- now;
          Jobstore.event sv.store j ~now "progress"
            [ ("completed", Report.Int completed); ("trials", Report.Int j.Jobstore.j_trials) ]
        end
      | Error _ -> (* a checkpoint mid-rename; the next poll sees the full file *) ())

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error (_, _, _) -> ()

(* --- Exit handling ----------------------------------------------------------- *)

(* OCaml reports signals in its own (negative) numbering; name the ones a
   farm actually sees *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else Printf.sprintf "signal %d" s

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d (%s)" c (Exit_code.describe (Exit_code.classify c))
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let requeue (sv : t) ~now (j : Jobstore.job) ~why =
  j.Jobstore.j_pid <- None;
  if j.Jobstore.j_attempts >= sv.cfg.sv_retry_budget then begin
    j.Jobstore.j_state <- Jobstore.Quarantined;
    j.Jobstore.j_reason <-
      Some
        (Printf.sprintf "retry budget exhausted (%d attempts; last: %s)" j.Jobstore.j_attempts why);
    Jobstore.event sv.store j ~now "quarantine"
      [ ("reason", Report.Str (Option.value j.Jobstore.j_reason ~default:"")) ]
  end
  else begin
    j.Jobstore.j_state <- Jobstore.Queued;
    let delay =
      backoff_delay ~base:sv.cfg.sv_backoff_base ~cap:sv.cfg.sv_backoff_cap
        ~attempt:j.Jobstore.j_attempts
    in
    j.Jobstore.j_next_eligible <- now +. delay;
    Jobstore.event sv.store j ~now "requeue"
      [ ("why", Report.Str why); ("backoff", Report.Str (Printf.sprintf "%.2fs" delay)) ]
  end;
  sv.store.Jobstore.dirty <- true

let finish (sv : t) ~now (j : Jobstore.job) ~(code : int) =
  j.Jobstore.j_pid <- None;
  j.Jobstore.j_state <- Jobstore.Done;
  j.Jobstore.j_verdict <- Some (Exit_code.describe (Exit_code.classify code));
  sv.store.Jobstore.dirty <- true;
  Jobstore.event sv.store j ~now "done" [ ("verdict", Report.Str (Exit_code.describe (Exit_code.classify code))) ];
  (* fold confirmed divergences into the cross-job dedup store *)
  let report_path = Filename.concat (Jobstore.job_dir sv.store j) report_file in
  if Sys.file_exists report_path then begin
    let ic = open_in_bin report_path in
    let raw =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Report.parse raw with
    | Ok report ->
      let fresh =
        Jobstore.fold_report sv.store.Jobstore.root sv.findings ~job_id:j.Jobstore.j_id report
      in
      if fresh > 0 then
        Jobstore.event sv.store j ~now "findings" [ ("new", Report.Int fresh) ]
    | Error _ -> ()
  end

(* The exit-code contract (lib/campaign/exit_code.ml) is what makes the
   supervisor's branching sound: verdict codes are terminal, usage errors
   are unretryable, interruption and signals mean the work is incomplete
   but the checkpoint is good. *)
let handle_exit (sv : t) ~now ~quitting (j : Jobstore.job) (status : Unix.process_status) =
  let why = describe_status status in
  j.Jobstore.j_last_exit <- Some why;
  Jobstore.event sv.store j ~now "exit" [ ("status", Report.Str why) ];
  match status with
  | Unix.WEXITED code when Exit_code.is_verdict (Exit_code.classify code) ->
    finish sv ~now j ~code
  | Unix.WEXITED code when code = Exit_code.usage ->
    j.Jobstore.j_pid <- None;
    j.Jobstore.j_state <- Jobstore.Quarantined;
    j.Jobstore.j_reason <- Some ("worker usage error: " ^ why);
    sv.store.Jobstore.dirty <- true;
    Jobstore.event sv.store j ~now "quarantine" [ ("reason", Report.Str ("usage error: " ^ why)) ]
  | Unix.WEXITED code when code = Exit_code.interrupted && quitting ->
    (* graceful shutdown: we sent SIGTERM ourselves; the attempt doesn't
       count against the job *)
    j.Jobstore.j_pid <- None;
    j.Jobstore.j_state <- Jobstore.Queued;
    j.Jobstore.j_attempts <- j.Jobstore.j_attempts - 1;
    j.Jobstore.j_next_eligible <- 0.;
    sv.store.Jobstore.dirty <- true;
    Jobstore.event sv.store j ~now "requeue" [ ("why", Report.Str "daemon shutdown") ]
  | Unix.WSIGNALED _ when quitting ->
    (* shutdown straggler we SIGKILLed ourselves: likewise uncharged *)
    j.Jobstore.j_pid <- None;
    j.Jobstore.j_state <- Jobstore.Queued;
    j.Jobstore.j_attempts <- j.Jobstore.j_attempts - 1;
    j.Jobstore.j_next_eligible <- 0.;
    sv.store.Jobstore.dirty <- true;
    Jobstore.event sv.store j ~now "requeue" [ ("why", Report.Str "daemon shutdown") ]
  | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> requeue sv ~now j ~why

(* --- The tick ----------------------------------------------------------------

   Called from the server's select loop.  Reaps exited workers, polls
   heartbeats and deadlines, and fills free pool slots with eligible queued
   jobs in submission order. *)

let tick (sv : t) ~now ~quitting =
  let running = List.filter (fun j -> j.Jobstore.j_state = Jobstore.Running) sv.store.Jobstore.jobs in
  (* 1. reap *)
  List.iter
    (fun (j : Jobstore.job) ->
      match j.Jobstore.j_pid with
      | None -> ()
      | Some pid -> (
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _, status -> handle_exit sv ~now ~quitting j status
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          (* not our child (journal replay edge); treat as killed *)
          handle_exit sv ~now ~quitting j (Unix.WSIGNALED Sys.sigkill)))
    running;
  (* 2. heartbeat + deadline on the still-running *)
  List.iter
    (fun (j : Jobstore.job) ->
      if j.Jobstore.j_state = Jobstore.Running then begin
        observe_progress sv ~now j;
        match j.Jobstore.j_pid with
        | None -> ()
        | Some pid ->
          let stale =
            sv.cfg.sv_heartbeat_timeout > 0.
            && j.Jobstore.j_kind = Protocol.Campaign
            && now -. j.Jobstore.j_last_progress_t > sv.cfg.sv_heartbeat_timeout
          in
          let overtime =
            sv.cfg.sv_job_timeout > 0. && now -. j.Jobstore.j_started > sv.cfg.sv_job_timeout
          in
          if stale || overtime then begin
            Jobstore.event sv.store j ~now "hung"
              [ ("why", Report.Str (if stale then "heartbeat stale" else "job deadline")) ];
            kill_quietly pid Sys.sigkill
            (* the reap on the next tick requeues or quarantines it *)
          end
      end)
    running;
  (* 3. spawn into free slots, oldest submission first *)
  if not quitting then begin
    let free = ref (sv.cfg.sv_workers - Jobstore.count_state sv.store Jobstore.Running) in
    List.iter
      (fun (j : Jobstore.job) ->
        if
          !free > 0
          && j.Jobstore.j_state = Jobstore.Queued
          && now >= j.Jobstore.j_next_eligible
        then begin
          spawn sv ~now j;
          decr free
        end)
      sv.store.Jobstore.jobs
  end

(* Signals every live worker; used at shutdown (SIGTERM → workers cut at
   the next block boundary and flush a final checkpoint) and as a last
   resort (SIGKILL). *)
let signal_workers (sv : t) signal =
  List.iter
    (fun (j : Jobstore.job) ->
      match (j.Jobstore.j_state, j.Jobstore.j_pid) with
      | Jobstore.Running, Some pid -> kill_quietly pid signal
      | _ -> ())
    sv.store.Jobstore.jobs

let running_count (sv : t) = Jobstore.count_state sv.store Jobstore.Running
