(* Semantic analysis of parsed ALU descriptions: well-formedness checks and
   the machine-code slot inventory.

   A "slot" is one machine-code-controlled degree of freedom inside the ALU:
   a mux selector, an Opt selector, an immediate, a rel_op/arith_op opcode,
   or a declared hole variable.  dgen later prefixes each slot name with the
   ALU's position in the pipeline to obtain the full machine-code name. *)

type domain =
  | Range of int (* selector in [0, n) *)
  | Immediate (* unsigned constant of the full datapath width *)
[@@deriving eq, show { with_path = false }]

type slot = { slot_name : string; domain : domain } [@@deriving eq, show { with_path = false }]

let mux_slot_name ~arity i = Printf.sprintf "mux%d_%d" arity i
let opt_slot_name i = Printf.sprintf "opt_%d" i
let const_slot_name i = Printf.sprintf "const_%d" i
let rel_op_slot_name i = Printf.sprintf "rel_op_%d" i
let arith_op_slot_name i = Printf.sprintf "arith_op_%d" i

(* Collects the slots of an expression in order of appearance. *)
let rec expr_slots acc (e : Ast.expr) =
  match e with
  | Ast.Const _ | Ast.Var _ -> acc
  | Ast.Unop (_, e) -> expr_slots acc e
  | Ast.Binop (_, a, b) -> expr_slots (expr_slots acc a) b
  | Ast.Hole_const i -> { slot_name = const_slot_name i; domain = Immediate } :: acc
  | Ast.Opt (i, e) -> expr_slots ({ slot_name = opt_slot_name i; domain = Range 2 } :: acc) e
  | Ast.Mux (i, es) ->
    let arity = List.length es in
    let acc = { slot_name = mux_slot_name ~arity i; domain = Range arity } :: acc in
    List.fold_left expr_slots acc es
  | Ast.Rel_op (i, a, b) ->
    let acc = { slot_name = rel_op_slot_name i; domain = Range Ast.rel_op_count } :: acc in
    expr_slots (expr_slots acc a) b
  | Ast.Arith_op (i, a, b) ->
    let acc = { slot_name = arith_op_slot_name i; domain = Range Ast.arith_op_count } :: acc in
    expr_slots (expr_slots acc a) b

let rec stmt_slots acc (s : Ast.stmt) =
  match s with
  | Ast.Assign (_, e) | Ast.Return e -> expr_slots acc e
  | Ast.If (branches, els) ->
    let acc =
      List.fold_left
        (fun acc (cond, body) -> List.fold_left stmt_slots (expr_slots acc cond) body)
        acc branches
    in
    List.fold_left stmt_slots acc els

(* Machine-code slots of the ALU, in order of appearance.  Hole variables
   come first (they are declared in the header), then body constructs. *)
let slots (alu : Ast.t) =
  let holes = List.map (fun h -> { slot_name = h; domain = Immediate }) alu.hole_vars in
  holes @ List.rev (List.fold_left stmt_slots [] alu.body)

(* --- Well-formedness ----------------------------------------------------- *)

let rec expr_vars acc (e : Ast.expr) =
  match e with
  | Ast.Const _ | Ast.Hole_const _ -> acc
  | Ast.Var v -> v :: acc
  | Ast.Unop (_, e) | Ast.Opt (_, e) -> expr_vars acc e
  | Ast.Binop (_, a, b) | Ast.Rel_op (_, a, b) | Ast.Arith_op (_, a, b) ->
    expr_vars (expr_vars acc a) b
  | Ast.Mux (_, es) -> List.fold_left expr_vars acc es

(* --- Unused declarations --------------------------------------------------

   Declared names (state variables, hole variables, packet fields) that the
   body never mentions.  They are legal — [validate] accepts them — but each
   one costs hardware: an unused packet field still instantiates an input
   mux per ALU, and an unused hole variable still demands a machine-code
   pair.  The lint surfaces them as warnings. *)

let unused_decls (alu : Ast.t) =
  let rec stmt_names acc (s : Ast.stmt) =
    match s with
    | Ast.Assign (v, e) -> expr_vars (v :: acc) e
    | Ast.Return e -> expr_vars acc e
    | Ast.If (branches, els) ->
      let acc =
        List.fold_left
          (fun acc (cond, body) -> List.fold_left stmt_names (expr_vars acc cond) body)
          acc branches
      in
      List.fold_left stmt_names acc els
  in
  let used = List.fold_left stmt_names [] alu.body in
  List.filter
    (fun v -> not (List.mem v used))
    (alu.state_vars @ alu.hole_vars @ alu.packet_fields)

(* Whether every control path through [body] executes a [Return]. *)
let rec always_returns body =
  List.exists
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Return _ -> true
      | Ast.If (branches, els) ->
        els <> []
        && List.for_all (fun (_, b) -> always_returns b) branches
        && always_returns els
      | Ast.Assign _ -> false)
    body

let validate (alu : Ast.t) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let declared =
    alu.state_vars @ alu.hole_vars @ alu.packet_fields
  in
  (* duplicate declarations *)
  let rec dup_check seen = function
    | [] -> ()
    | v :: rest ->
      if List.mem v seen then err "duplicate declaration of '%s'" v;
      dup_check (v :: seen) rest
  in
  dup_check [] declared;
  (match alu.kind with
  | Ast.Stateful -> if alu.state_vars = [] then err "stateful ALU must declare at least one state variable"
  | Ast.Stateless ->
    if alu.state_vars <> [] then err "stateless ALU must not declare state variables");
  (* body checks *)
  let check_expr e =
    List.iter
      (fun v -> if not (List.mem v declared) then err "use of undeclared variable '%s'" v)
      (expr_vars [] e)
  in
  let rec check_stmt (s : Ast.stmt) =
    match s with
    | Ast.Assign (target, e) ->
      if not (List.mem target alu.state_vars) then
        err "assignment target '%s' is not a state variable" target;
      check_expr e
    | Ast.Return e -> check_expr e
    | Ast.If (branches, els) ->
      List.iter
        (fun (cond, body) ->
          check_expr cond;
          List.iter check_stmt body)
        branches;
      List.iter check_stmt els
  in
  List.iter check_stmt alu.body;
  (* a stateless ALU has no implicit output, so it must always return *)
  if alu.kind = Ast.Stateless && not (always_returns alu.body) then
    err "stateless ALU must execute 'return' on every control path";
  match !errs with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

let validate_exn alu =
  match validate alu with
  | Ok () -> ()
  | Error errs -> invalid_arg (Printf.sprintf "ALU '%s': %s" alu.name (String.concat "; " errs))
