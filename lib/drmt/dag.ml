(* Table-dependency DAG extraction (paper §4.1).

   dgen "converts the given P4 file into a DAG representing the match+action
   table dependencies".  Following the dRMT formulation, every table
   contributes a match node and an action node; edges carry the minimum
   separation in clock cycles between the two operations on the same packet:

   - match -> action of the same table: the match latency (the action needs
     the match result);
   - action of T -> match of U: *match dependency* — T's actions write a
     field U matches on;
   - action of T -> action of U: *action dependency* — T writes a field U's
     actions read or write;
   - match of T -> action of U: *reverse-match dependency* — U writes a field
     T matches on, so U's write must not overtake T's key read (separation 1);
   - successor edges preserve the control order between otherwise
     independent tables with separation 0 (they may execute concurrently on
     different crossbar ports but not be reordered in effect; keeping the
     edge makes the greedy schedule deterministic). *)

type node =
  | Match of string (* table name *)
  | Action of string
[@@deriving eq, show { with_path = false }]

type edge = { e_from : node; e_to : node; e_latency : int } [@@deriving eq, show { with_path = false }]

type t = {
  nodes : node list; (* in control order: M t1, A t1, M t2, ... *)
  edges : edge list;
  delta_match : int;
  delta_action : int;
}

let intersects a b = List.exists (fun x -> List.mem x b) a

(* [delta_match]/[delta_action] default to the dRMT paper's pipeline
   latencies (22 and 2 cycles). *)
let build ?(delta_match = 22) ?(delta_action = 2) (p : P4.t) : t =
  let tables =
    List.filter_map (fun name -> P4.find_table p name) p.P4.control
  in
  let nodes =
    List.concat_map (fun (t : P4.table) -> [ Match t.t_name; Action t.t_name ]) tables
  in
  let edges = ref [] in
  let add e_from e_to e_latency = edges := { e_from; e_to; e_latency } :: !edges in
  (* match feeds its own action *)
  List.iter (fun (t : P4.table) -> add (Match t.t_name) (Action t.t_name) delta_match) tables;
  (* pairwise dependencies, in control order *)
  let rec pairs = function
    | [] -> ()
    | (t : P4.table) :: rest ->
      let wt = P4.table_writes p t in
      List.iter
        (fun (u : P4.table) ->
          let ru = P4.table_reads p u in
          let wu = P4.table_writes p u in
          let match_dep = List.mem u.P4.t_key wt in
          let action_dep = intersects wt ru || intersects wt wu in
          let reverse_dep = List.mem t.P4.t_key wu in
          if match_dep then add (Action t.t_name) (Match u.P4.t_name) delta_action;
          if action_dep then add (Action t.t_name) (Action u.P4.t_name) delta_action;
          if reverse_dep && not match_dep then add (Match t.t_name) (Action u.P4.t_name) 1;
          if (not match_dep) && not action_dep then
            (* successor edge: control order between independent tables *)
            add (Match t.t_name) (Match u.P4.t_name) 0)
        rest;
      pairs rest
  in
  pairs tables;
  { nodes; edges = List.rev !edges; delta_match; delta_action }

let predecessors dag node =
  List.filter_map (fun e -> if equal_node e.e_to node then Some e else None) dag.edges

(* Kahn's algorithm over the edge list: returns the nodes left with a
   non-zero in-degree after peeling, i.e. a witness set containing at least
   one cycle, or [None] when the graph is acyclic.  [build] only emits
   forward edges so its output is always acyclic, but hand-assembled graphs
   (and future dependency extractors) are not guaranteed to be — the lint
   rule for cyclic table DAGs goes through here. *)
let find_cycle dag : node list option =
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg (show_node n) 0) dag.nodes;
  List.iter
    (fun e ->
      match Hashtbl.find_opt indeg (show_node e.e_to) with
      | Some d -> Hashtbl.replace indeg (show_node e.e_to) (d + 1)
      | None -> ())
    dag.edges;
  let queue = Queue.create () in
  List.iter (fun n -> if Hashtbl.find indeg (show_node n) = 0 then Queue.add n queue) dag.nodes;
  let peeled = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr peeled;
    List.iter
      (fun e ->
        if equal_node e.e_from n then
          match Hashtbl.find_opt indeg (show_node e.e_to) with
          | Some d ->
            Hashtbl.replace indeg (show_node e.e_to) (d - 1);
            if d - 1 = 0 then Queue.add e.e_to queue
          | None -> ())
      dag.edges
  done;
  if !peeled = List.length dag.nodes then None
  else
    Some
      (List.filter (fun n -> Hashtbl.find indeg (show_node n) > 0) dag.nodes)

(* Nodes in a topological order (the node list is already one: all edges go
   forward in control order, and Match precedes Action per table). *)
let topological dag = dag.nodes

(* Longest path through the DAG: a lower bound on the per-packet latency any
   schedule can achieve. *)
let critical_path dag =
  let finish = Hashtbl.create 16 in
  List.iter
    (fun node ->
      let start =
        List.fold_left
          (fun acc e -> max acc (Hashtbl.find finish (show_node e.e_from) + e.e_latency))
          0 (predecessors dag node)
      in
      Hashtbl.replace finish (show_node node) start)
    (topological dag);
  Hashtbl.fold (fun _ v acc -> max v acc) finish 0
