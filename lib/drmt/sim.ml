(* dRMT dsim (paper §4.2).

   The disaggregated model: a set of match+action processors share
   centralized match+action tables through a crossbar.  At every tick the
   traffic generator emits a packet with randomly initialized fields (per the
   P4 program's header declarations); packets go to processors round robin;
   each processor runs the program to completion following the static
   schedule produced by {!Scheduler}; matches consult the table entries
   loaded from the {!Entries} configuration and actions mutate packet fields
   and the global stateful registers.

   Execution is event-driven: every (packet, node) pair becomes an event at
   cycle [arrival + schedule time]; events execute in cycle order, so
   register accesses from overlapping packets interleave exactly as the
   hardware's timing dictates.  [run_sequential] provides the P4 sequential
   reference semantics (one packet at a time) used for differential
   testing. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng

type packet = {
  pk_id : int;
  pk_arrival : int;
  pk_processor : int;
  fields : (P4.field_ref, int) Hashtbl.t;
  mutable selected : (string * string * int list) list; (* table -> matched action *)
  mutable dropped : bool;
}

type stats = {
  st_packets : int;
  st_cycles : int; (* last event cycle + 1 *)
  st_matches : int;
  st_actions : int;
  st_table_hits : (string * int) list;
  (* chip-wide concurrency (all processors summed) *)
  st_peak_match_per_cycle : int;
  st_peak_action_per_cycle : int;
  (* per-processor peaks: the scheduler guarantees these stay within the
     configured per-processor crossbar capacities *)
  st_peak_match_per_processor : int;
  st_peak_action_per_processor : int;
}

type result = {
  r_packets : packet list; (* in arrival order *)
  r_registers : (string * int) list;
  r_stats : stats;
}

(* --- Shared evaluation ------------------------------------------------------- *)

let field_bits (p : P4.t) r = match P4.field_width p r with Some w -> min w 62 | None -> 32

let read_field (p : P4.t) registers (pk : packet) r =
  match r with
  | P4.Reg name -> ( try Hashtbl.find registers name with Not_found -> 0)
  | P4.Header _ | P4.Meta _ -> ( try Hashtbl.find pk.fields r with Not_found -> 0)
  |> Value.mask (field_bits p r)

let rec eval (p : P4.t) registers pk params (e : P4.expr) =
  let bits = 32 in
  match e with
  | P4.Int n -> Value.mask bits n
  | P4.Ref r -> read_field p registers pk r
  | P4.Param name -> (
    match List.assoc_opt name params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Drmt.Sim: unbound action parameter '%s'" name))
  | P4.Binop (op, a, b) ->
    let x = eval p registers pk params a and y = eval p registers pk params b in
    (match op with
    | P4.Add -> Value.add bits x y
    | P4.Sub -> Value.sub bits x y
    | P4.Mul -> Value.mul bits x y
    | P4.Div -> Value.div bits x y
    | P4.Mod -> Value.rem bits x y
    | P4.Eq -> Value.eq x y
    | P4.Neq -> Value.neq x y
    | P4.Lt -> Value.lt x y
    | P4.Gt -> Value.gt x y
    | P4.Le -> Value.le x y
    | P4.Ge -> Value.ge x y
    | P4.And -> Value.logical_and x y
    | P4.Or -> Value.logical_or x y)
  | P4.Unop (op, a) ->
    let x = eval p registers pk params a in
    (match op with P4.Neg -> Value.neg bits x | P4.Not -> Value.logical_not x)

let write_field (p : P4.t) registers (pk : packet) r v =
  let v = Value.mask (field_bits p r) v in
  match r with
  | P4.Reg name -> Hashtbl.replace registers name v
  | P4.Header _ | P4.Meta _ -> Hashtbl.replace pk.fields r v

let exec_action (p : P4.t) registers pk (a : P4.action) args =
  let params =
    try List.combine a.P4.a_params args
    with Invalid_argument _ ->
      invalid_arg (Printf.sprintf "Drmt.Sim: action '%s' arity mismatch" a.P4.a_name)
  in
  List.iter
    (fun prim ->
      match prim with
      | P4.Assign (r, e) -> write_field p registers pk r (eval p registers pk params e)
      | P4.Drop -> pk.dropped <- true
      | P4.Noop -> ())
    a.P4.a_body

(* Match phase of [table] for [pk]: select the action the entry (or default)
   dictates.  Returns whether an entry hit. *)
let do_match (p : P4.t) entries registers (pk : packet) (table : P4.table) =
  let key_width = field_bits p table.P4.t_key in
  let key = read_field p registers pk table.P4.t_key in
  match Entries.lookup entries ~table:table.P4.t_name ~key_width key with
  | Some entry ->
    pk.selected <-
      (table.P4.t_name, entry.Entries.en_action, entry.Entries.en_args) :: pk.selected;
    true
  | None ->
    let name, args = table.P4.t_default in
    pk.selected <- (table.P4.t_name, name, args) :: pk.selected;
    false

let do_action (p : P4.t) registers (pk : packet) (table : P4.table) =
  match
    List.find_map
      (fun (t, action, args) -> if t = table.P4.t_name then Some (action, args) else None)
      pk.selected
  with
  | Some (action, args) -> (
    match P4.find_action p action with
    | Some a -> exec_action p registers pk a args
    | None -> invalid_arg (Printf.sprintf "Drmt.Sim: unknown action '%s'" action))
  | None -> invalid_arg (Printf.sprintf "Drmt.Sim: action before match for table '%s'" table.P4.t_name)

(* --- Traffic ------------------------------------------------------------------ *)

(* Each packet draws its fields from its own PRNG stream, derived from the
   run seed and the packet id ([Prng.derive]).  Packet [k] of seed [s] is
   therefore reproducible in isolation — a campaign can replay any single
   packet of a trial from the trial seed alone, matching the RMT determinism
   contract. *)
let random_packet (p : P4.t) ~seed ~id ~arrival ~processor =
  let prng = Prng.create (Prng.derive seed id) in
  let fields = Hashtbl.create 16 in
  List.iter
    (fun (r, w) -> Hashtbl.replace fields r (Prng.bits prng (min w 62)))
    (P4.packet_fields p.P4.headers);
  { pk_id = id; pk_arrival = arrival; pk_processor = processor; fields; selected = []; dropped = false }

(* Builds a packet from explicit field values (a substrate adapter feeding
   externally generated traffic).  Unlisted fields read as 0. *)
let packet_of_fields ~id ~arrival ~processor assignments =
  let fields = Hashtbl.create 16 in
  List.iter (fun (r, v) -> Hashtbl.replace fields r v) assignments;
  { pk_id = id; pk_arrival = arrival; pk_processor = processor; fields; selected = []; dropped = false }

(* --- Scheduled (dRMT) execution ------------------------------------------------- *)

(* Event-driven execution of pre-built packets.  [spend] is a fuel hook
   invoked once per (packet, node) event — callers with a tick budget thread
   [Budget.spend] through it without this library depending on the budget
   module.  [registers] preloads the global register file (control-plane
   initialization).  Packets are mutated in place: pass fresh packets per
   run. *)
let run_packets ?(spend = fun () -> ()) ?(registers = []) ~(cfg : Scheduler.config) ~entries
    (pks : packet list) (p : P4.t) : result =
  let preload = registers in
  let dag = Dag.build p in
  let sched = Scheduler.schedule cfg dag in
  (match Scheduler.validate dag sched with
  | [] -> ()
  | violations ->
    invalid_arg
      (Fmt.str "Drmt.Sim: scheduler produced an invalid schedule: %a"
         Fmt.(list ~sep:(any "; ") Scheduler.pp_violation)
         violations));
  (* every (packet, node) pair is an event at arrival + node time *)
  let events =
    List.concat_map
      (fun pk ->
        List.map (fun (node, time) -> (pk.pk_arrival + time, pk, node)) sched.Scheduler.times)
      pks
  in
  let events =
    List.stable_sort
      (fun (c1, pk1, _) (c2, pk2, _) ->
        match compare c1 c2 with 0 -> compare pk1.pk_id pk2.pk_id | c -> c)
      events
  in
  let registers = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace registers k v) preload;
  let matches = ref 0 and actions = ref 0 in
  let hits = Hashtbl.create 8 in
  let per_cycle_match = Hashtbl.create 64 and per_cycle_action = Hashtbl.create 64 in
  let per_proc_match = Hashtbl.create 64 and per_proc_action = Hashtbl.create 64 in
  let bump tbl key = Hashtbl.replace tbl key (1 + (try Hashtbl.find tbl key with Not_found -> 0)) in
  let last_cycle = ref 0 in
  List.iter
    (fun (cycle, pk, node) ->
      spend ();
      last_cycle := max !last_cycle cycle;
      match node with
      | Dag.Match name ->
        incr matches;
        bump per_cycle_match cycle;
        bump per_proc_match (cycle, pk.pk_processor);
        let table = Option.get (P4.find_table p name) in
        if do_match p entries registers pk table then bump hits name
      | Dag.Action name ->
        incr actions;
        bump per_cycle_action cycle;
        bump per_proc_action (cycle, pk.pk_processor);
        do_action p registers pk (Option.get (P4.find_table p name)))
    events;
  let peak tbl = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0 in
  {
    r_packets = pks;
    r_registers =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) registers []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    r_stats =
      {
        st_packets = List.length pks;
        st_cycles = !last_cycle + 1;
        st_matches = !matches;
        st_actions = !actions;
        st_table_hits =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) hits []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        st_peak_match_per_cycle = peak per_cycle_match;
        st_peak_action_per_cycle = peak per_cycle_action;
        st_peak_match_per_processor = peak per_proc_match;
        st_peak_action_per_processor = peak per_proc_action;
      };
  }

let run ?(seed = 0xD52ba) ?spend ~(cfg : Scheduler.config) ~entries ~packets (p : P4.t) : result =
  let pks =
    List.init packets (fun k ->
        random_packet p ~seed ~id:k ~arrival:k ~processor:(k mod cfg.Scheduler.processors))
  in
  run_packets ?spend ~cfg ~entries pks p

(* --- Sequential reference semantics ---------------------------------------------- *)

(* Runs packets one at a time, tables in control order — standard P4
   semantics, used as the golden model for differential testing of the
   scheduled execution.  [spend] fires once per (packet, table) step. *)
let run_sequential_packets ?(spend = fun () -> ()) ?(registers = []) ~entries
    (pks : packet list) (p : P4.t) : result =
  let preload = registers in
  let registers = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace registers k v) preload;
  let matches = ref 0 and actions = ref 0 in
  let hits = Hashtbl.create 8 in
  let bump tbl key = Hashtbl.replace tbl key (1 + (try Hashtbl.find tbl key with Not_found -> 0)) in
  List.iter
    (fun pk ->
      List.iter
        (fun name ->
          spend ();
          let table = Option.get (P4.find_table p name) in
          incr matches;
          if do_match p entries registers pk table then bump hits name;
          incr actions;
          do_action p registers pk table)
        p.P4.control)
    pks;
  {
    r_packets = pks;
    r_registers =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) registers []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    r_stats =
      {
        st_packets = List.length pks;
        st_cycles = List.length pks;
        st_matches = !matches;
        st_actions = !actions;
        st_table_hits =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) hits []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        st_peak_match_per_cycle = 0;
        st_peak_action_per_cycle = 0;
        st_peak_match_per_processor = 0;
        st_peak_action_per_processor = 0;
      };
  }

let run_sequential ?(seed = 0xD52ba) ?spend ~entries ~packets (p : P4.t) : result =
  let pks =
    List.init packets (fun k -> random_packet p ~seed ~id:k ~arrival:k ~processor:0)
  in
  run_sequential_packets ?spend ~entries pks p

(* Compares packet-local outcomes of two runs (register interleavings may
   differ when packets overlap; packet fields must not). *)
let packets_agree (a : result) (b : result) =
  List.length a.r_packets = List.length b.r_packets
  && List.for_all2
       (fun (x : packet) (y : packet) ->
         x.dropped = y.dropped
         && Hashtbl.fold (fun r v acc -> acc && Hashtbl.find_opt y.fields r = Some v) x.fields true)
       a.r_packets b.r_packets

let pp_packet (p : P4.t) ppf (pk : packet) =
  Fmt.pf ppf "packet %d%s:" pk.pk_id (if pk.dropped then " (dropped)" else "");
  List.iter
    (fun (r, _) ->
      match Hashtbl.find_opt pk.fields r with
      | Some v -> Fmt.pf ppf " %s=%d" (P4.show_field_ref r) v
      | None -> ())
    (P4.packet_fields p.P4.headers)
