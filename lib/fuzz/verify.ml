(* Bounded-exhaustive equivalence verification (paper §7).

   The paper's future work: "we wish to use program verification by allowing
   support for a high-level specification ... so that equivalence can be
   formally proven."  Short of an SMT solver, equivalence of a pipeline and
   a specification *at a small datapath width* is decidable by exhaustive
   state-space exploration, and small-width exhaustive proofs complement
   wide-width fuzzing nicely (they are exactly the regime where fuzzing is
   weakest: rare boundary inputs).

   The check proves, by breadth-first induction over reachable states:

     for every reachable (pipeline state, spec state) pair and EVERY input
     PHV, the observed output containers agree and the successor states
     remain paired.

   Packets are fed one at a time (each fully drained).  Per-ALU state
   updates are sequential in packet order whether or not packets overlap in
   the pipeline, so single-packet equivalence implies streaming-trace
   equivalence for the feed-forward model.

   The input space is [2^(bits*width)] per state and the state space is
   bounded by [2^(bits * state slots)]; [max_states] caps the exploration
   honestly — exceeding it returns [Inconclusive], never a false proof. *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dataflow = Druzhba_analysis.Dataflow
module Phv = Druzhba_dsim.Phv
module Substrate = Druzhba_dsim.Substrate
module Trace = Druzhba_dsim.Trace

type counterexample = {
  cx_pipeline_state : (string * int array) list; (* where the run diverged from *)
  cx_spec_state : int array;
  cx_input : Phv.t;
  cx_kind : [ `Output of int | `State of int ];
  cx_expected : int;
  cx_actual : int;
}

type result =
  | Proved of { states : int; inputs_per_state : int }
  | Counterexample of counterexample
  | Inconclusive of { explored : int } (* state budget exhausted *)

let pp_result ppf = function
  | Proved { states; inputs_per_state } ->
    Fmt.pf ppf "proved: %d reachable states x %d inputs each" states inputs_per_state
  | Counterexample cx ->
    let kind = match cx.cx_kind with `Output c -> Fmt.str "container %d" c | `State i -> Fmt.str "state slot %d" i in
    Fmt.pf ppf "counterexample at input %a (%s: expected %d, got %d)" Phv.pp cx.cx_input kind
      cx.cx_expected cx.cx_actual
  | Inconclusive { explored } -> Fmt.pf ppf "inconclusive: state budget exhausted after %d states" explored

(* Enumerates every PHV over [width] containers of [bits] bits. *)
let all_phvs ~bits ~width =
  let values = 1 lsl bits in
  let total = 1 lsl (bits * width) in
  List.init total (fun code ->
      Array.init width (fun c -> (code lsr (c * bits)) mod values))

(* Serializes a (pipeline state, spec state) pair into a comparable key. *)
let state_key pipeline_state spec_state =
  (List.map (fun (n, v) -> (n, Array.to_list v)) pipeline_state, Array.to_list spec_state)

let exhaustive_check ?(max_states = 200_000) ?substrate ~(desc : Ir.t) ~mc ~(spec : Fuzz.spec)
    ~observed ~(state_layout : Fuzz.state_layout) ~init () : result =
  let bits = desc.Ir.d_bits in
  let width = desc.Ir.d_width in
  let inputs = all_phvs ~bits ~width in
  let inputs_per_state = List.length inputs in
  (* The substrate under proof — the interpreter engine unless the caller
     swaps in another backend (the closure compiler, a dRMT adapter). *)
  let sub =
    match substrate with Some s -> s | None -> Substrate.of_engine ~init desc ~mc
  in
  let buf = Trace.Buffer.create ~width:(Substrate.width sub) ~capacity:1 in
  (* run one packet from a given pipeline state; return (output, new state) *)
  let run_one pipeline_state input =
    Trace.Buffer.clear buf;
    Substrate.load_state sub pipeline_state;
    Substrate.run_into sub ~inputs:[ input ] buf;
    if Trace.Buffer.length buf <> 1 then invalid_arg "Verify: expected exactly one output";
    (Array.copy (Trace.Buffer.row buf 0), Substrate.current_state sub)
  in
  let spec_step spec_state input =
    let s = Array.copy spec_state in
    let out = spec.Fuzz.spec_step s input in
    (out, s)
  in
  let initial_spec = spec.Fuzz.spec_init () in
  (* normalize the initial pipeline state to cover every stateful ALU: an
     empty run re-arms the substrate from [init] and leaves its full state
     vector observable *)
  let initial_pipeline =
    Substrate.load_state sub init;
    Substrate.run_into sub ~inputs:[] buf;
    Substrate.current_state sub
  in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  Hashtbl.replace seen (state_key initial_pipeline initial_spec) ();
  Queue.add (initial_pipeline, initial_spec) queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let pipeline_state, spec_state = Queue.take queue in
       List.iter
         (fun input ->
           let output, pipeline_state' = run_one pipeline_state input in
           let expected, spec_state' = spec_step spec_state input in
           (* outputs *)
           (match List.find_opt (fun c -> expected.(c) <> output.(c)) observed with
           | Some c ->
             result :=
               Some
                 (Counterexample
                    {
                      cx_pipeline_state = pipeline_state;
                      cx_spec_state = spec_state;
                      cx_input = input;
                      cx_kind = `Output c;
                      cx_expected = expected.(c);
                      cx_actual = output.(c);
                    });
             raise_notrace Exit
           | None -> ());
           (* state pairing *)
           List.iter
             (fun (alu, slot, idx) ->
               let actual =
                 match List.assoc_opt alu pipeline_state' with
                 | Some vec -> vec.(slot)
                 | None -> min_int
               in
               if actual <> spec_state'.(idx) then begin
                 result :=
                   Some
                     (Counterexample
                        {
                          cx_pipeline_state = pipeline_state;
                          cx_spec_state = spec_state;
                          cx_input = input;
                          cx_kind = `State idx;
                          cx_expected = spec_state'.(idx);
                          cx_actual = actual;
                        });
                 raise_notrace Exit
               end)
             state_layout;
           (* explore the successor *)
           let key = state_key pipeline_state' spec_state' in
           if not (Hashtbl.mem seen key) then begin
             if Hashtbl.length seen >= max_states then begin
               result := Some (Inconclusive { explored = Hashtbl.length seen });
               raise_notrace Exit
             end;
             Hashtbl.replace seen key ();
             Queue.add (pipeline_state', spec_state') queue
           end)
         inputs
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> Proved { states = Hashtbl.length seen; inputs_per_state }

(* --- Mismatch triage --------------------------------------------------------

   When fuzzing or exhaustive checking reports a divergence, the interesting
   question is *which part of the pipeline it flows through*: on a pipeline
   with dozens of ALUs and hundreds of machine-code pairs, the backward
   slice from the diverging output usually implicates a handful of each —
   the Gauntlet-style localization step that turns "trace mismatch at PHV
   517" into "look at these two ALUs and their selectors". *)

type triage = {
  tr_start : Dataflow.node;  (* the diverging observable *)
  tr_alus : string list;  (* ALUs the value can have flowed through *)
  tr_state : (string * int) list;  (* state slots involved *)
  tr_controls : string list;  (* machine-code pairs that steer the slice *)
  tr_containers : (int * int) list;  (* (stage boundary, container) *)
}

(* Backward-slices the provenance graph from a diverging output container or
   state slot.  The machine code makes the slice sharp: each output mux
   contributes only its selected arm.  [`Container] starts from a mid-
   pipeline stage boundary — translation validation refutes per-stage
   obligations, not just final outputs. *)
let triage ~(desc : Ir.t) ~mc
    (kind : [ `Output of int | `State of string * int | `Container of int * int ]) : triage =
  let pv = Dataflow.provenance ~mc desc in
  let start =
    match kind with
    | `Output c -> Dataflow.output_node pv c
    | `State (alu, slot) -> Dataflow.Nstate (alu, slot)
    | `Container (stage, c) -> Dataflow.Ncontainer (stage + 1, c)
  in
  let nodes = Dataflow.slice pv start in
  let alus = List.filter_map (function Dataflow.Nalu n -> Some n | _ -> None) nodes in
  let state = List.filter_map (function Dataflow.Nstate (n, k) -> Some (n, k) | _ -> None) nodes in
  let controls = List.filter_map (function Dataflow.Ncontrol n -> Some n | _ -> None) nodes in
  let containers =
    List.filter_map (function Dataflow.Ncontainer (s, c) -> Some (s, c) | _ -> None) nodes
  in
  { tr_start = start; tr_alus = alus; tr_state = state; tr_controls = controls; tr_containers = containers }

let pp_triage ppf (t : triage) =
  let pp_capped pp_item ppf items =
    let n = List.length items in
    let shown = if n > 24 then List.filteri (fun i _ -> i < 24) items else items in
    Fmt.pf ppf "%a" Fmt.(list ~sep:(any ", ") pp_item) shown;
    if n > 24 then Fmt.pf ppf ", ... (%d total)" n
  in
  Fmt.pf ppf "@[<v>divergence slice from %a:@," Dataflow.pp_node t.tr_start;
  Fmt.pf ppf "  ALUs:       %a@," (pp_capped Fmt.string) t.tr_alus;
  Fmt.pf ppf "  state:      %a@,"
    (pp_capped (fun ppf (n, k) -> Fmt.pf ppf "%s[%d]" n k))
    t.tr_state;
  Fmt.pf ppf "  controls:   %a@," (pp_capped Fmt.string) t.tr_controls;
  Fmt.pf ppf "  containers: %a@]"
    (pp_capped (fun ppf (s, c) -> Fmt.pf ppf "phv%d@@%d" c s))
    t.tr_containers
