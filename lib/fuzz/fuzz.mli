(** Fuzzing-based compiler testing (paper §3.3, Fig. 5).

    The workflow: machine code produced by a compiler under test is loaded
    into a pipeline description; the traffic generator produces random PHVs;
    the pipeline's output trace is compared against the trace the program's
    specification produces on the same inputs.  Divergence means the
    compiler mis-mapped the program.

    {!outcome} encodes the case study's failure taxonomy (§5.2): machine
    code missing required pairs, and output/state mismatches (which is how
    narrow-range machine code surfaces under wide fuzzing). *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Optimizer = Druzhba_optimizer.Optimizer
module Phv = Druzhba_dsim.Phv
module Substrate = Druzhba_dsim.Substrate
module Trace = Druzhba_dsim.Trace

val random_mc : ?imm_bits:int -> Prng.t -> Ir.t -> Machine_code.t
(** A random but well-formed machine-code program for a description: every
    selector is drawn from its domain, every immediate from [imm_bits]
    (default 8, clamped to the datapath width).  Used for pure simulator
    fuzzing and differential testing of the optimizer. *)

(** A specification: carries its own state and maps each input PHV to the
    expected output PHV. *)
type spec = {
  spec_init : unit -> int array;  (** fresh specification state *)
  spec_step : int array -> Phv.t -> Phv.t;  (** may mutate the state vector *)
}

type state_layout = (string * int * int) list
(** How pipeline state maps back to specification state:
    [(stateful ALU name, state slot, spec state index)]. *)

type mismatch = {
  mm_kind : [ `Output of int | `State of int ];
  mm_index : int;  (** PHV position in the trace; [-1] for final state *)
  mm_expected : int;
  mm_actual : int;
  mm_input : Phv.t option;  (** the PHV that exposed the divergence *)
  mm_seed : int;
      (** traffic seed of the failing trial — printed by {!pp_outcome} so
          any reported failure is reproducible from the message alone *)
}

type outcome =
  | Pass of { phvs : int }
  | Missing_pairs of string list  (** §5.2 failure class 1 *)
  | Out_of_range_selectors of (string * int * int) list
      (** selector values outside their control domain:
          [(name, value, bound)] with valid range [[0, bound)] *)
  | Mismatch of mismatch  (** §5.2 failure class 2 shows up here *)

val pp_outcome : outcome Fmt.t
val outcome_is_pass : outcome -> bool

val compare_traces :
  ?seed:int ->
  observed:int list ->
  spec:spec ->
  state_layout:state_layout ->
  trace:Trace.t ->
  unit ->
  mismatch option
(** Replays [spec] over the trace's inputs and compares outputs (restricted
    to the [observed] containers) and final state.  [seed] (default 0) is
    recorded in any mismatch so the report identifies the failing trial. *)

val run_equivalence :
  ?level:Optimizer.level ->
  ?seed:int ->
  ?prefix:Druzhba_dsim.Phv.t list ->
  ?init:(string * int array) list ->
  ?substrate_of:(Ir.t -> mc:Machine_code.t -> Substrate.packed) ->
  desc:Ir.t ->
  mc:Machine_code.t ->
  spec:spec ->
  observed:int list ->
  state_layout:state_layout ->
  n:int ->
  unit ->
  outcome
(** The full Fig. 5 workflow for one machine-code program: validate the
    machine code against the description's required names, optimize at
    [level] (default {!Optimizer.Scc}), simulate [n] random PHVs from
    [seed] — after the directed [prefix] PHVs, if any, which run first from
    the reset state — and compare traces.  [init] preloads stateful-ALU state
    (control-plane register initialization).  [substrate_of] selects the
    execution substrate for the optimized description (default: the
    interpreter engine via {!Substrate.of_engine}). *)
