(* Fuzzing-based compiler testing (paper §3.3, Fig. 5).

   The workflow: machine code produced by the compiler under test is loaded
   into a pipeline description; the traffic generator produces random PHVs;
   the pipeline's output trace is compared against the trace produced by a
   high-level specification of the intended algorithm.  Assertion failures
   mean the compiler mis-mapped the program.

   The outcome type encodes the paper's observed failure classes (§5.2):
   missing machine-code pairs, and output mismatches (which is how
   insufficient machine code that only satisfies narrow inputs shows up when
   fuzzing at the full datapath width). *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Optimizer = Druzhba_optimizer.Optimizer
module Phv = Druzhba_dsim.Phv
module Substrate = Druzhba_dsim.Substrate
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace

(* --- Random machine code --------------------------------------------------

   For pure simulator fuzzing (no compiler in the loop) we draw a random but
   well-formed machine-code program: every control the description requires
   gets a value from its domain. *)

let random_mc ?(imm_bits = 8) prng (desc : Ir.t) : Machine_code.t =
  let imm_bits = min imm_bits desc.Ir.d_bits in
  let pairs =
    List.map
      (fun (name, domain) ->
        match (domain : Ir.control_domain) with
        | Ir.Selector n -> (name, Prng.int prng n)
        | Ir.Immediate -> (name, Prng.bits prng imm_bits))
      (Ir.control_domains desc)
  in
  Machine_code.of_list pairs

(* --- Specifications -------------------------------------------------------

   A specification consumes input PHVs one at a time, carrying its own state,
   and produces the expected output PHV.  [observed] restricts trace
   comparison to the containers the program actually defines (the rest hold
   simulator-internal intermediate values). *)

type spec = {
  spec_init : unit -> int array; (* fresh specification state *)
  spec_step : int array -> Phv.t -> Phv.t; (* may mutate the state vector *)
}

(* Maps pipeline state back to specification state for final-state
   comparison: (stateful ALU name, state slot, spec state index). *)
type state_layout = (string * int * int) list

type mismatch = {
  mm_kind : [ `Output of int (* container *) | `State of int (* spec state index *) ];
  mm_index : int; (* PHV position in the trace; -1 for final state *)
  mm_expected : int;
  mm_actual : int;
  mm_input : Phv.t option; (* the PHV that exposed the divergence *)
  mm_seed : int; (* traffic seed of the failing trial, for replay *)
}

type outcome =
  | Pass of { phvs : int }
  | Missing_pairs of string list (* §5.2 failure class 1 *)
  | Out_of_range_selectors of (string * int * int) list (* (name, value, bound) *)
  | Mismatch of mismatch (* §5.2 failure class 2 shows up here *)

let pp_outcome ppf = function
  | Pass { phvs } -> Fmt.pf ppf "pass (%d PHVs)" phvs
  | Missing_pairs names ->
    Fmt.pf ppf "missing machine code pairs: %a" Fmt.(list ~sep:(any ", ") string) names
  | Out_of_range_selectors sels ->
    Fmt.pf ppf "out-of-range selectors: %a"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (name, v, bound) ->
            pf ppf "%s = %d (domain [0, %d))" name v bound))
      sels
  | Mismatch { mm_kind; mm_index; mm_expected; mm_actual; mm_input; mm_seed } -> (
    match mm_kind with
    | `Output c ->
      Fmt.pf ppf "output mismatch at phv %d, container %d: expected %d, got %d (input %a, seed %d)"
        mm_index c mm_expected mm_actual (Fmt.option Phv.pp) mm_input mm_seed
    | `State i ->
      Fmt.pf ppf "final state mismatch at spec slot %d: expected %d, got %d (seed %d)" i
        mm_expected mm_actual mm_seed)

let outcome_is_pass = function
  | Pass _ -> true
  | Missing_pairs _ | Out_of_range_selectors _ | Mismatch _ -> false

(* --- Equivalence testing --------------------------------------------------- *)

let compare_traces ?(seed = 0) ~observed ~(spec : spec) ~state_layout ~(trace : Trace.t) () =
  let state = spec.spec_init () in
  let rec go index inputs outputs =
    match (inputs, outputs) with
    | [], [] -> None
    | input :: inputs, output :: outputs -> (
      let expected = spec.spec_step state input in
      let bad =
        List.find_opt (fun c -> expected.(c) <> output.(c)) observed
      in
      match bad with
      | Some c ->
        Some
          {
            mm_kind = `Output c;
            mm_index = index;
            mm_expected = expected.(c);
            mm_actual = output.(c);
            mm_input = Some input;
            mm_seed = seed;
          }
      | None -> go (index + 1) inputs outputs)
    | _ ->
      (* the engine produces exactly one output per input *)
      invalid_arg "Fuzz.compare_traces: trace length mismatch"
  in
  match go 0 trace.Trace.inputs trace.Trace.outputs with
  | Some mm -> Some mm
  | None ->
    (* final state *)
    List.find_map
      (fun (alu_name, slot, spec_index) ->
        match Trace.find_state trace alu_name with
        | None ->
          Some
            {
              mm_kind = `State spec_index;
              mm_index = -1;
              mm_expected = state.(spec_index);
              mm_actual = min_int;
              mm_input = None;
              mm_seed = seed;
            }
        | Some vec ->
          if vec.(slot) <> state.(spec_index) then
            Some
              {
                mm_kind = `State spec_index;
                mm_index = -1;
                mm_expected = state.(spec_index);
                mm_actual = vec.(slot);
                mm_input = None;
                mm_seed = seed;
              }
          else None)
      state_layout

(* Runs the full Fig. 5 workflow for one machine-code program: validate the
   machine code, optimize the description at [level], simulate [n] random
   PHVs, and compare the output trace (restricted to [observed] containers
   and [state_layout] state) against the specification.

   [substrate_of] picks the execution substrate for the (already optimized)
   description — the interpreter engine by default; tests can swap in the
   closure compiler or any other {!Substrate.packed} without touching the
   workflow.

   [prefix] PHVs are fed before the [n] random ones: directed trials (e.g.
   witness candidates from translation validation) hit their target packet
   first, from the reset state, then keep fuzzing from wherever it led. *)
let run_equivalence ?(level = Optimizer.Scc) ?(seed = 0xD52ba) ?(prefix = []) ?init ?substrate_of
    ~desc ~mc ~spec ~observed ~state_layout ~n () =
  match Machine_code.validate ~domains:(Ir.control_domains desc) mc with
  | Error violations -> (
    let missing =
      List.filter_map
        (function Machine_code.Missing_pair n -> Some n | Machine_code.Out_of_range _ -> None)
        violations
    in
    match missing with
    | _ :: _ -> Missing_pairs missing
    | [] ->
      Out_of_range_selectors
        (List.filter_map
           (function
             | Machine_code.Out_of_range { vi_name; vi_value; vi_bound } ->
               Some (vi_name, vi_value, vi_bound)
             | Machine_code.Missing_pair _ -> None)
           violations))
  | Ok () -> (
    let optimized = Optimizer.apply ~level ~mc desc in
    let substrate =
      match substrate_of with
      | Some f -> f optimized ~mc
      | None -> Substrate.of_engine ?init optimized ~mc
    in
    let traffic =
      Traffic.create ~seed ~width:desc.Ir.d_width ~bits:desc.Ir.d_bits
    in
    let inputs = prefix @ Traffic.phvs traffic n in
    let total = List.length inputs in
    let buf = Trace.Buffer.create ~width:(Substrate.width substrate) ~capacity:total in
    match Substrate.run_into substrate ~inputs buf with
    | () -> (
      let trace =
        {
          Trace.inputs;
          outputs = Trace.Buffer.contents buf;
          final_state = Substrate.current_state substrate;
        }
      in
      match compare_traces ~seed ~observed ~spec ~state_layout ~trace () with
      | None -> Pass { phvs = total }
      | Some mm -> Mismatch mm)
    | exception Machine_code.Missing name -> Missing_pairs [ name ])
